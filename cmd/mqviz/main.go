// Command mqviz is the scheduling-analytics server over the span tracer: it
// loads trace collections (Chrome trace_event JSON written by
// mqbench -trace-out, mqserver's /trace endpoint, or mqclient -trace-dump),
// reconstructs them with internal/traceviz, and serves JSON analytics plus a
// framework-free HTML/canvas UI — per-spindle and per-worker utilization
// heatmaps, queue-depth and wait-time timelines, per-strategy latency
// breakdowns, and interval-aligned A/B diffs of two runs.
//
// Usage:
//
//	mqviz -load runs/fifo.json -load runs/cnbf.json
//	mqviz -attach http://localhost:9124 -load baseline.json
//
// Endpoints (all GET, all JSON):
//
//	/api/collections                      loaded collections with build info
//	/api/queries?collection=N             per-query records with phase splits
//	/api/intervals?collection=N[&kind=K]  typed intervals (wait/exec/io/...)
//	/api/utilization?collection=N         spindle/worker busy heatmap
//	/api/timelines?collection=N           queue depth, wait, arrival curves
//	/api/breakdown?collection=N           per-strategy latency decomposition
//	/api/diff?a=N&b=M                     interval-aligned A/B comparison
//
// A collection attached with -attach is re-snapshotted from the live server
// when it is older than -refresh at query time.
package main

import (
	"bytes"
	"embed"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"mqsched/internal/traceviz"
)

//go:embed static
var staticFS embed.FS

func main() {
	var (
		addr    = flag.String("addr", "localhost:9300", "HTTP listen address")
		buckets = flag.Int("buckets", traceviz.DefaultBuckets, "default time buckets for heatmaps and timelines")
		attach  = flag.String("attach", "", "base URL of a running mqserver metrics listener (e.g. http://localhost:9124); its /trace ring is loaded as collection \"live\"")
		refresh = flag.Duration("refresh", 5*time.Second, "re-snapshot an attached server when its collection is older than this")
	)
	var loads []string
	flag.Func("load", "trace JSON file to load as a collection (repeatable; the file stem names it)", func(path string) error {
		loads = append(loads, path)
		return nil
	})
	flag.Parse()

	srv := newServer(*buckets)
	for _, path := range loads {
		if err := srv.loadFile(path); err != nil {
			log.Fatal(err)
		}
	}
	if *attach != "" {
		srv.attachLive(strings.TrimRight(*attach, "/"), *refresh)
		if err := srv.refreshLive(); err != nil {
			log.Fatalf("mqviz: attach %s: %v", *attach, err)
		}
	}
	if len(srv.names) == 0 {
		fmt.Fprintln(os.Stderr, "mqviz: nothing to serve; pass -load FILE and/or -attach URL")
		flag.Usage()
		os.Exit(2)
	}

	log.Printf("mqviz: serving %d collection(s) on http://%s", len(srv.names), *addr)
	for _, name := range srv.names {
		c := srv.collections[name]
		log.Printf("  %s: %d queries, %d spindles, %d workers, %.2fs span",
			name, len(c.Queries), len(c.Spindles), len(c.Threads), c.Span)
	}
	log.Fatal(http.ListenAndServe(*addr, srv.mux()))
}

// server holds the loaded collections and the attach configuration. All
// analytics are pure functions of the collections; the only mutable state is
// the live collection's periodic re-snapshot.
type server struct {
	buckets int

	mu          sync.RWMutex
	names       []string // insertion order, for stable /api/collections
	collections map[string]*traceviz.Collection

	liveURL     string
	liveRefresh time.Duration
	liveLoaded  time.Time
}

func newServer(buckets int) *server {
	return &server{buckets: buckets, collections: map[string]*traceviz.Collection{}}
}

// loadFile loads one trace file; the file stem (deduplicated with a numeric
// suffix) names the collection.
func (s *server) loadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("mqviz: %w", err)
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	base := name
	for i := 2; s.collections[name] != nil; i++ {
		name = fmt.Sprintf("%s-%d", base, i)
	}
	c, err := traceviz.Load(name, f)
	if err != nil {
		return err
	}
	s.add(c)
	return nil
}

func (s *server) add(c *traceviz.Collection) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.collections[c.Name]; !ok {
		s.names = append(s.names, c.Name)
	}
	s.collections[c.Name] = c
}

func (s *server) attachLive(url string, refresh time.Duration) {
	s.liveURL = url
	s.liveRefresh = refresh
}

// refreshLive snapshots the attached server's span ring into the "live"
// collection.
func (s *server) refreshLive() error {
	resp, err := http.Get(s.liveURL + "/trace")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s/trace: %s", s.liveURL, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	c, err := traceviz.Load("live", bytes.NewReader(body))
	if err != nil {
		return err
	}
	s.add(c)
	s.mu.Lock()
	s.liveLoaded = time.Now()
	s.mu.Unlock()
	return nil
}

// get resolves a collection by name, re-snapshotting a stale live
// collection first.
func (s *server) get(name string) (*traceviz.Collection, error) {
	s.mu.RLock()
	stale := name == "live" && s.liveURL != "" && time.Since(s.liveLoaded) > s.liveRefresh
	c := s.collections[name]
	s.mu.RUnlock()
	if stale {
		if err := s.refreshLive(); err != nil {
			return nil, fmt.Errorf("refresh live: %w", err)
		}
		s.mu.RLock()
		c = s.collections[name]
		s.mu.RUnlock()
	}
	if c == nil {
		return nil, fmt.Errorf("unknown collection %q", name)
	}
	return c, nil
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/collections", s.handleCollections)
	mux.HandleFunc("/api/queries", s.withCollection(func(c *traceviz.Collection, r *http.Request) (any, error) {
		return c.Queries, nil
	}))
	mux.HandleFunc("/api/intervals", s.withCollection(func(c *traceviz.Collection, r *http.Request) (any, error) {
		kind := r.FormValue("kind")
		if kind == "" {
			return c.Intervals, nil
		}
		out := []traceviz.Interval{}
		for _, iv := range c.Intervals {
			if iv.Kind == kind {
				out = append(out, iv)
			}
		}
		return out, nil
	}))
	mux.HandleFunc("/api/utilization", s.withCollection(func(c *traceviz.Collection, r *http.Request) (any, error) {
		return traceviz.Utilization(c, s.bucketsOf(r)), nil
	}))
	mux.HandleFunc("/api/timelines", s.withCollection(func(c *traceviz.Collection, r *http.Request) (any, error) {
		return traceviz.ComputeTimelines(c, s.bucketsOf(r)), nil
	}))
	mux.HandleFunc("/api/breakdown", s.withCollection(func(c *traceviz.Collection, r *http.Request) (any, error) {
		return traceviz.Breakdown(c), nil
	}))
	mux.HandleFunc("/api/diff", s.handleDiff)

	static, err := fs.Sub(staticFS, "static")
	if err != nil {
		panic(err)
	}
	mux.Handle("/", http.FileServer(http.FS(static)))
	return mux
}

// CollectionSummary is one /api/collections row: enough for the client to
// build its header and pickers without fetching every view.
type CollectionSummary struct {
	Name      string            `json:"name"`
	Info      map[string]string `json:"info,omitempty"`
	Dropped   uint64            `json:"dropped"`
	Span      float64           `json:"span"`
	Queries   int               `json:"queries"`
	Truncated int               `json:"truncated"`
	Spindles  []string          `json:"spindles"`
	Threads   []string          `json:"threads"`
	Live      bool              `json:"live"`
}

func (s *server) handleCollections(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	names := append([]string(nil), s.names...)
	s.mu.RUnlock()
	out := []CollectionSummary{}
	for _, name := range names {
		c, err := s.get(name)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		sum := CollectionSummary{
			Name: c.Name, Info: c.Info, Dropped: c.Dropped, Span: c.Span,
			Queries: len(c.Queries), Spindles: c.Spindles, Threads: c.Threads,
			Live: name == "live" && s.liveURL != "",
		}
		for _, q := range c.Queries {
			if q.Truncated {
				sum.Truncated++
			}
		}
		out = append(out, sum)
	}
	writeJSON(w, out)
}

func (s *server) handleDiff(w http.ResponseWriter, r *http.Request) {
	a, err := s.get(r.FormValue("a"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	b, err := s.get(r.FormValue("b"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, traceviz.Diff(a, b))
}

// withCollection wraps a view handler with collection resolution and JSON
// encoding.
func (s *server) withCollection(view func(*traceviz.Collection, *http.Request) (any, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		c, err := s.get(r.FormValue("collection"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		v, err := view(c, r)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, v)
	}
}

func (s *server) bucketsOf(r *http.Request) int {
	if v := r.FormValue("buckets"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 && n <= 4096 {
			return n
		}
	}
	return s.buckets
}

// writeJSON emits indented JSON with a trailing newline — byte-stable for
// golden files and curl-friendly.
func writeJSON(w http.ResponseWriter, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

func writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
