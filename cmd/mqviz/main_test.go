package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mqsched"
	"mqsched/internal/netproto"
	"mqsched/internal/traceviz"
)

var update = flag.Bool("update", false, "rewrite golden files from current responses")

// newTestServer loads the two committed sample traces shared with
// internal/traceviz.
func newTestServer(t *testing.T) *server {
	t.Helper()
	s := newServer(24)
	for _, name := range []string{"sample_fifo", "sample_cnbf"} {
		path := filepath.Join("..", "..", "internal", "traceviz", "testdata", name+".json")
		if err := s.loadFile(path); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run 'go test ./cmd/mqviz -update')", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from %s; run 'go test ./cmd/mqviz -update' and review", name, path)
	}
}

// TestAPIGoldens pins every /api endpoint's response for the committed
// samples byte-for-byte. CI additionally curls a live mqviz against the same
// golden for /api/utilization.
func TestAPIGoldens(t *testing.T) {
	ts := httptest.NewServer(newTestServer(t).mux())
	defer ts.Close()

	cases := []struct{ name, path string }{
		{"collections", "/api/collections"},
		{"queries_fifo", "/api/queries?collection=sample_fifo"},
		{"intervals_wait_fifo", "/api/intervals?collection=sample_fifo&kind=wait"},
		{"utilization_fifo", "/api/utilization?collection=sample_fifo&buckets=24"},
		{"utilization_cnbf", "/api/utilization?collection=sample_cnbf&buckets=24"},
		{"timelines_fifo", "/api/timelines?collection=sample_fifo&buckets=24"},
		{"breakdown_fifo", "/api/breakdown?collection=sample_fifo"},
		{"breakdown_cnbf", "/api/breakdown?collection=sample_cnbf"},
		{"diff", "/api/diff?a=sample_fifo&b=sample_cnbf"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := get(t, ts, tc.path)
			if code != http.StatusOK {
				t.Fatalf("GET %s = %d: %s", tc.path, code, body)
			}
			if !json.Valid(body) {
				t.Fatalf("GET %s: invalid JSON", tc.path)
			}
			checkGolden(t, tc.name, body)
		})
	}
}

// TestAPIErrors: bad collection names get JSON 404s, not empty 200s.
func TestAPIErrors(t *testing.T) {
	ts := httptest.NewServer(newTestServer(t).mux())
	defer ts.Close()
	for _, path := range []string{
		"/api/queries?collection=nope",
		"/api/utilization?collection=nope",
		"/api/timelines",
		"/api/breakdown?collection=nope",
		"/api/diff?a=sample_fifo&b=nope",
		"/api/diff?a=nope&b=sample_fifo",
	} {
		code, body := get(t, ts, path)
		if code != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, code)
		}
		var e map[string]string
		if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
			t.Errorf("GET %s: body %q is not an error object", path, body)
		}
	}
}

// TestIntervalsFiltering: the kind filter returns only matching intervals and
// an unknown kind returns an empty array, not null.
func TestIntervalsFiltering(t *testing.T) {
	ts := httptest.NewServer(newTestServer(t).mux())
	defer ts.Close()
	code, body := get(t, ts, "/api/intervals?collection=sample_fifo&kind=disk")
	if code != http.StatusOK {
		t.Fatalf("code %d", code)
	}
	var ivs []traceviz.Interval
	if err := json.Unmarshal(body, &ivs); err != nil {
		t.Fatal(err)
	}
	if len(ivs) == 0 {
		t.Fatal("no disk intervals in sample")
	}
	for _, iv := range ivs {
		if iv.Kind != "disk" || !strings.HasPrefix(iv.Resource, "spindle/") {
			t.Fatalf("filtered interval %+v", iv)
		}
	}
	code, body = get(t, ts, "/api/intervals?collection=sample_fifo&kind=bogus")
	if code != http.StatusOK || strings.TrimSpace(string(body)) != "[]" {
		t.Errorf("unknown kind: code %d body %q, want empty array", code, body)
	}
}

// TestStaticUI: the embedded index page and script are served at /.
func TestStaticUI(t *testing.T) {
	ts := httptest.NewServer(newTestServer(t).mux())
	defer ts.Close()
	code, body := get(t, ts, "/")
	if code != http.StatusOK || !bytes.Contains(body, []byte("mqviz")) {
		t.Fatalf("GET / = %d, %d bytes", code, len(body))
	}
	code, body = get(t, ts, "/app.js")
	if code != http.StatusOK || !bytes.Contains(body, []byte("api/utilization")) {
		t.Fatalf("GET /app.js = %d, %d bytes", code, len(body))
	}
}

// TestDuplicateLoadNames: loading the same file twice yields distinct
// collection names.
func TestDuplicateLoadNames(t *testing.T) {
	s := newServer(24)
	path := filepath.Join("..", "..", "internal", "traceviz", "testdata", "sample_fifo.json")
	for i := 0; i < 2; i++ {
		if err := s.loadFile(path); err != nil {
			t.Fatal(err)
		}
	}
	if len(s.names) != 2 || s.names[0] == s.names[1] {
		t.Fatalf("names = %v", s.names)
	}
}

// TestLiveAttach: mqviz snapshots a live mqserver's span ring end to end —
// mqserver answers queries over netproto, serves /trace over HTTP, and mqviz
// reconstructs the capture as the "live" collection.
func TestLiveAttach(t *testing.T) {
	table := mqsched.NewSlideTable(mqsched.Slide{Name: "s1", Width: 2048, Height: 2048})
	sys, err := mqsched.New(mqsched.Config{
		Mode: mqsched.Real, Policy: "fifo", Threads: 2, TimeScale: 0.0001,
		TraceSpans: true,
	}, table)
	if err != nil {
		t.Fatal(err)
	}

	// Run a few queries through the live server to populate the ring.
	done := make(chan error, 1)
	sys.Start("loader", func(ctx mqsched.Ctx) {
		for i := 0; i < 3; i++ {
			q := mqsched.NewVMQuery("s1", mqsched.R(0, 0, 512, 512), 2, mqsched.Subsample)
			tk, err := sys.Submit(q)
			if err != nil {
				done <- err
				return
			}
			tk.Wait(ctx)
		}
		done <- nil
	})
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// The /trace endpoint mqviz attaches to, as mqserver serves it.
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/trace" {
			http.NotFound(w, r)
			return
		}
		if err := sys.Spans().WriteChromeInfo(w, mqsched.BuildInfo()); err != nil {
			t.Error(err)
		}
	}))
	defer upstream.Close()

	s := newServer(24)
	s.attachLive(upstream.URL, 0)
	if err := s.refreshLive(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.mux())
	defer ts.Close()

	code, body := get(t, ts, "/api/collections")
	if code != http.StatusOK {
		t.Fatalf("collections: %d", code)
	}
	var cols []CollectionSummary
	if err := json.Unmarshal(body, &cols); err != nil {
		t.Fatal(err)
	}
	if len(cols) != 1 || cols[0].Name != "live" || !cols[0].Live {
		t.Fatalf("collections = %+v", cols)
	}
	if cols[0].Queries != 3 {
		t.Errorf("live queries = %d, want 3", cols[0].Queries)
	}
	if !strings.Contains(cols[0].Info["strategies"], "fifo") {
		t.Errorf("live build info = %v", cols[0].Info)
	}
	code, body = get(t, ts, "/api/breakdown?collection=live")
	if code != http.StatusOK {
		t.Fatalf("breakdown: %d %s", code, body)
	}
	var bd []traceviz.StrategyBreakdown
	if err := json.Unmarshal(body, &bd); err != nil {
		t.Fatal(err)
	}
	if len(bd) != 1 || bd[0].Queries != 3 {
		t.Fatalf("breakdown = %+v", bd)
	}
}

// TestTraceDumpFeedsViz: the full capture chain — mqclient's -trace-dump path
// (netproto TraceChromeDump) produces a file mqviz loads.
func TestTraceDumpFeedsViz(t *testing.T) {
	table := mqsched.NewSlideTable(mqsched.Slide{Name: "s1", Width: 2048, Height: 2048})
	sys, err := mqsched.New(mqsched.Config{
		Mode: mqsched.Real, Policy: "cnbf", Threads: 2, TimeScale: 0.0001,
		TraceSpans: true,
	}, table)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go netproto.Serve(l, sys, t.Logf)
	defer l.Close()

	cl := netproto.NewClient(l.Addr().String(), 0)
	defer cl.Close()
	if _, err := cl.Do(&netproto.Request{
		Slide: "s1", X1: 512, Y1: 512, Zoom: 2, Op: "subsample", OmitPixels: true,
	}); err != nil {
		t.Fatal(err)
	}
	data, err := cl.TraceChromeDump()
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "dump.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s := newServer(24)
	if err := s.loadFile(path); err != nil {
		t.Fatal(err)
	}
	c, err := s.get("dump")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Queries) != 1 || c.Queries[0].Strategy == "" {
		t.Fatalf("dump reconstructed %+v", c.Queries)
	}
}
