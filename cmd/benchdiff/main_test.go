package main

import (
	"strings"
	"testing"
)

const scalingJSON = `{
  "benchmark": "BenchmarkScaling",
  "points": [
    {"threads": 1, "qps": 100.0},
    {"threads": 4, "qps": 320.0}
  ]
}`

const diskJSON = `{
  "benchmark": "BenchmarkDiskSweep",
  "points": [
    {"sched": "fifo", "pages_per_sec": 5000},
    {"sched": "elevator", "pages_per_sec": 9000}
  ],
  "elevator_speedup": 1.8
}`

const loadJSON = `{
  "benchmark": "mqload",
  "strategies": [
    {"name": "cf", "points": [
      {"offered_qps": 25, "achieved_qps": 24.8},
      {"offered_qps": 50, "achieved_qps": 49.1}
    ]},
    {"name": "fifo", "points": [
      {"offered_qps": 25, "achieved_qps": 24.5}
    ]}
  ]
}`

func TestMetricsOfScaling(t *testing.T) {
	kind, m, err := metricsOf([]byte(scalingJSON))
	if err != nil {
		t.Fatal(err)
	}
	if kind != "BenchmarkScaling" {
		t.Fatalf("kind %q", kind)
	}
	if m["threads=1 qps"] != 100 || m["threads=4 qps"] != 320 {
		t.Fatalf("metrics %v", m)
	}
	if len(m) != 2 {
		t.Fatalf("want 2 metrics, got %v", m)
	}
}

func TestMetricsOfDisk(t *testing.T) {
	kind, m, err := metricsOf([]byte(diskJSON))
	if err != nil {
		t.Fatal(err)
	}
	if kind != "BenchmarkDiskSweep" {
		t.Fatalf("kind %q", kind)
	}
	if m["sched=fifo pages/sec"] != 5000 || m["sched=elevator pages/sec"] != 9000 {
		t.Fatalf("metrics %v", m)
	}
	if m["elevator speedup"] != 1.8 {
		t.Fatalf("speedup missing: %v", m)
	}
}

func TestMetricsOfLoad(t *testing.T) {
	kind, m, err := metricsOf([]byte(loadJSON))
	if err != nil {
		t.Fatal(err)
	}
	if kind != "mqload" {
		t.Fatalf("kind %q", kind)
	}
	want := map[string]float64{
		"cf offered=25 qps":   24.8,
		"cf offered=50 qps":   49.1,
		"fifo offered=25 qps": 24.5,
	}
	for k, v := range want {
		if m[k] != v {
			t.Errorf("%s = %v, want %v (all: %v)", k, m[k], v, m)
		}
	}
}

const cacheJSON = `{
  "benchmark": "BenchmarkCacheSweep",
  "budget_mb": 32,
  "queries": 800,
  "points": [
    {"policy": "lru", "rate_qps": 50, "reused_frac": 0.64, "p95_s": 241.0, "achieved_qps": 2.47},
    {"policy": "cost", "rate_qps": 50, "reused_frac": 0.67, "p95_s": 227.0, "achieved_qps": 2.59}
  ],
  "cost_reuse_gain": 1.035,
  "cost_p95_speedup": 1.033
}`

func TestMetricsOfCacheSweep(t *testing.T) {
	kind, m, err := metricsOf([]byte(cacheJSON))
	if err != nil {
		t.Fatal(err)
	}
	if kind != "BenchmarkCacheSweep" {
		t.Fatalf("kind %q", kind)
	}
	want := map[string]float64{
		"lru rate=50 reused_frac":  0.64,
		"lru rate=50 qps":          2.47,
		"cost rate=50 reused_frac": 0.67,
		"cost rate=50 qps":         2.59,
		"cost reuse gain":          1.035,
		"cost p95 speedup":         1.033,
	}
	for k, v := range want {
		if m[k] != v {
			t.Errorf("%s = %v, want %v (all: %v)", k, m[k], v, m)
		}
	}
	// p95 is lower-is-better: it must gate only through the speedup ratio.
	if len(m) != len(want) {
		t.Fatalf("want %d metrics, got %v", len(want), m)
	}
}

// TestMetricsOfCommittedCacheBaseline: the committed BENCH_cache.json parses
// and records the cost policy beating lru on both gated ratios.
func TestMetricsOfCommittedCacheBaseline(t *testing.T) {
	kind, m, err := metricsOfFile("../../BENCH_cache.json")
	if err != nil {
		t.Fatal(err)
	}
	if kind != "BenchmarkCacheSweep" {
		t.Fatalf("kind %q", kind)
	}
	if m["cost reuse gain"] <= 1 || m["cost p95 speedup"] <= 1 {
		t.Fatalf("baseline does not show the cost policy winning: %v", m)
	}
}

const batchJSON = `{
  "benchmark": "BenchmarkBatchSweep",
  "queries": 64,
  "points": [
    {"shape": "high_overlap", "policy": "cnbf", "qps": 23.2, "p95_s": 2.37, "batch_groups": 0},
    {"shape": "high_overlap", "policy": "batch", "qps": 53.3, "p95_s": 1.10, "batch_groups": 8}
  ],
  "high_overlap_qps_gain": 2.29,
  "low_overlap_p95_guard": 1.03
}`

func TestMetricsOfBatchSweep(t *testing.T) {
	kind, m, err := metricsOf([]byte(batchJSON))
	if err != nil {
		t.Fatal(err)
	}
	if kind != "BenchmarkBatchSweep" {
		t.Fatalf("kind %q", kind)
	}
	want := map[string]float64{
		"high overlap qps gain": 2.29,
		"low overlap p95 guard": 1.03,
	}
	for k, v := range want {
		if m[k] != v {
			t.Errorf("%s = %v, want %v (all: %v)", k, m[k], v, m)
		}
	}
	// Absolute qps is wall-clock and must not gate: only the two ratios.
	if len(m) != len(want) {
		t.Fatalf("want %d metrics, got %v", len(want), m)
	}
}

// TestMetricsOfCommittedBatchBaseline: the committed BENCH_batch.json parses
// and records the batch executor clearing its acceptance bars — at least a
// 1.5x aggregate-qps gain on the high-overlap bursts and a low-overlap p95
// no worse than 1.2x CNBF's.
func TestMetricsOfCommittedBatchBaseline(t *testing.T) {
	kind, m, err := metricsOfFile("../../BENCH_batch.json")
	if err != nil {
		t.Fatal(err)
	}
	if kind != "BenchmarkBatchSweep" {
		t.Fatalf("kind %q", kind)
	}
	if m["high overlap qps gain"] < 1.5 {
		t.Fatalf("baseline qps gain %v, want >= 1.5", m["high overlap qps gain"])
	}
	if m["low overlap p95 guard"] < 1/1.2 {
		t.Fatalf("baseline p95 guard %v, want >= %v", m["low overlap p95 guard"], 1/1.2)
	}
}

const kernelsJSON = `{
  "vm": {
    "benchmark": "BenchmarkKernels",
    "kernels": [
      {"kernel": "vm/subsample/zoom4", "ref_mb_per_s": 11000, "opt_mb_per_s": 33000, "speedup": 3.0},
      {"kernel": "vm/average/zoom4", "ref_mb_per_s": 337, "opt_mb_per_s": 1284, "speedup": 3.8}
    ]
  },
  "vol": {
    "benchmark": "BenchmarkVolKernels",
    "kernels": [
      {"kernel": "vol/accum/zoom4", "ref_mb_per_s": 135, "opt_mb_per_s": 391, "speedup": 2.9}
    ]
  },
  "large_query": {
    "benchmark": "BenchmarkLargeQueryParallel",
    "points": [
      {"op": "subsample", "workers": 1, "sec_per_query": 1.02, "speedup": 1},
      {"op": "subsample", "workers": 4, "sec_per_query": 0.128, "speedup": 7.98}
    ]
  }
}`

func TestMetricsOfKernelsComposite(t *testing.T) {
	kind, m, err := metricsOf([]byte(kernelsJSON))
	if err != nil {
		t.Fatal(err)
	}
	if kind != "kernels" {
		t.Fatalf("kind %q", kind)
	}
	want := map[string]float64{
		"vm/subsample/zoom4 speedup":              3.0,
		"vm/average/zoom4 speedup":                3.8,
		"vol/accum/zoom4 speedup":                 2.9,
		"large_query/subsample workers=4 speedup": 7.98,
	}
	for k, v := range want {
		if m[k] != v {
			t.Errorf("%s = %v, want %v", k, m[k], v)
		}
	}
	// Only the speedup ratios gate: no MB/s, no workers=1 anchor.
	if len(m) != len(want) {
		t.Fatalf("want %d metrics, got %v", len(want), m)
	}
}

// TestMetricsOfCommittedKernels: the committed baseline itself parses — the
// gate cannot silently skip it.
func TestMetricsOfCommittedKernels(t *testing.T) {
	kind, m, err := metricsOfFile("../../BENCH_kernels.json")
	if err != nil {
		t.Fatal(err)
	}
	if kind != "kernels" {
		t.Fatalf("kind %q", kind)
	}
	if len(m) < 8 {
		t.Fatalf("committed baseline has %d gated metrics, want >= 8: %v", len(m), m)
	}
}

func TestMetricsOfRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"not json",
		`{"benchmark": "mystery"}`,
		`{"benchmark": "BenchmarkScaling", "points": []}`,
		`{"vm": {"kernels": []}, "vol": {"kernels": []}}`,
	} {
		if _, _, err := metricsOf([]byte(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestCompareWithinTolerance(t *testing.T) {
	base := map[string]float64{"a": 100, "b": 50}
	fresh := map[string]float64{"a": 80, "b": 45}
	report, failures := compare(base, fresh, 0.5)
	if len(failures) != 0 {
		t.Fatalf("unexpected failures %v\n%s", failures, report)
	}
	if !strings.Contains(report, "ok") {
		t.Fatalf("report lacks ok lines:\n%s", report)
	}
}

func TestCompareRegression(t *testing.T) {
	base := map[string]float64{"a": 100, "b": 50}
	fresh := map[string]float64{"a": 40, "b": 49}
	_, failures := compare(base, fresh, 0.5)
	if len(failures) != 1 || !strings.Contains(failures[0], "a:") {
		t.Fatalf("want exactly the regression on a, got %v", failures)
	}
}

func TestCompareBoundaryIsInclusive(t *testing.T) {
	// Exactly baseline*(1-tol) passes; only strictly below fails.
	base := map[string]float64{"a": 100}
	if _, failures := compare(base, map[string]float64{"a": 50}, 0.5); len(failures) != 0 {
		t.Fatalf("f == b*(1-tol) should pass, got %v", failures)
	}
	if _, failures := compare(base, map[string]float64{"a": 49.99}, 0.5); len(failures) != 1 {
		t.Fatalf("f < b*(1-tol) should fail, got %v", failures)
	}
}

func TestCompareMissingMetricFails(t *testing.T) {
	base := map[string]float64{"a": 100, "gone": 10}
	fresh := map[string]float64{"a": 100}
	report, failures := compare(base, fresh, 0.5)
	if len(failures) != 1 || !strings.Contains(failures[0], "gone") {
		t.Fatalf("missing metric should fail, got %v", failures)
	}
	if !strings.Contains(report, "MISSING") {
		t.Fatalf("report does not flag the hole:\n%s", report)
	}
}

func TestCompareNewMetricIsInformational(t *testing.T) {
	base := map[string]float64{"a": 100}
	fresh := map[string]float64{"a": 100, "shiny": 7}
	report, failures := compare(base, fresh, 0.5)
	if len(failures) != 0 {
		t.Fatalf("fresh-only metric must not fail: %v", failures)
	}
	if !strings.Contains(report, "shiny") || !strings.Contains(report, "new metric") {
		t.Fatalf("report omits new metric:\n%s", report)
	}
}

const clusterJSON = `{
  "benchmark": "BenchmarkClusterSweep",
  "per_node_offered_qps": 45,
  "points": [
    {"backends": 1, "routing": "affine", "offered_qps": 45, "achieved_qps": 39.7, "mean_reuse": 0.57, "p95_ms": 47.0, "spills": 0},
    {"backends": 4, "routing": "affine", "offered_qps": 180, "achieved_qps": 190.3, "mean_reuse": 0.64, "p95_ms": 39.3, "spills": 14},
    {"backends": 4, "routing": "dataset", "offered_qps": 180, "achieved_qps": 189.8, "mean_reuse": 0.5, "p95_ms": 66.0, "spills": 180}
  ],
  "scaling_x4": 4.79,
  "affine_reuse_gain": 1.28
}`

func TestMetricsOfClusterSweep(t *testing.T) {
	kind, m, err := metricsOf([]byte(clusterJSON))
	if err != nil {
		t.Fatal(err)
	}
	if kind != "BenchmarkClusterSweep" {
		t.Fatalf("kind %q", kind)
	}
	want := map[string]float64{
		"backends=1 routing=affine reuse":  0.57,
		"backends=4 routing=affine reuse":  0.64,
		"backends=4 routing=dataset reuse": 0.5,
		"cluster scaling x4":               4.79,
		"affine reuse gain":                1.28,
	}
	for k, v := range want {
		if m[k] != v {
			t.Errorf("%s = %v, want %v (all: %v)", k, m[k], v, m)
		}
	}
	// Absolute qps and latency are wall-clock and must not gate.
	if len(m) != len(want) {
		t.Fatalf("want %d metrics, got %v", len(want), m)
	}
}

// TestMetricsOfCommittedClusterBaseline: the committed BENCH_cluster.json
// parses and clears the scale-out acceptance bars — at least 1.6x qps at 4
// backends vs 1, with region-affine routing beating dataset hashing on
// cache reuse at equal node count.
func TestMetricsOfCommittedClusterBaseline(t *testing.T) {
	kind, m, err := metricsOfFile("../../BENCH_cluster.json")
	if err != nil {
		t.Fatal(err)
	}
	if kind != "BenchmarkClusterSweep" {
		t.Fatalf("kind %q", kind)
	}
	if m["cluster scaling x4"] < 1.6 {
		t.Fatalf("baseline scaling %v, want >= 1.6", m["cluster scaling x4"])
	}
	if m["affine reuse gain"] <= 1 {
		t.Fatalf("baseline affine reuse gain %v, want > 1", m["affine reuse gain"])
	}
	if m["backends=4 routing=affine reuse"] <= m["backends=4 routing=dataset reuse"] {
		t.Fatalf("affine reuse %v should beat dataset reuse %v",
			m["backends=4 routing=affine reuse"], m["backends=4 routing=dataset reuse"])
	}
}
