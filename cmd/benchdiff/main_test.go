package main

import (
	"strings"
	"testing"
)

const scalingJSON = `{
  "benchmark": "BenchmarkScaling",
  "points": [
    {"threads": 1, "qps": 100.0},
    {"threads": 4, "qps": 320.0}
  ]
}`

const diskJSON = `{
  "benchmark": "BenchmarkDiskSweep",
  "points": [
    {"sched": "fifo", "pages_per_sec": 5000},
    {"sched": "elevator", "pages_per_sec": 9000}
  ],
  "elevator_speedup": 1.8
}`

const loadJSON = `{
  "benchmark": "mqload",
  "strategies": [
    {"name": "cf", "points": [
      {"offered_qps": 25, "achieved_qps": 24.8},
      {"offered_qps": 50, "achieved_qps": 49.1}
    ]},
    {"name": "fifo", "points": [
      {"offered_qps": 25, "achieved_qps": 24.5}
    ]}
  ]
}`

func TestMetricsOfScaling(t *testing.T) {
	kind, m, err := metricsOf([]byte(scalingJSON))
	if err != nil {
		t.Fatal(err)
	}
	if kind != "BenchmarkScaling" {
		t.Fatalf("kind %q", kind)
	}
	if m["threads=1 qps"] != 100 || m["threads=4 qps"] != 320 {
		t.Fatalf("metrics %v", m)
	}
	if len(m) != 2 {
		t.Fatalf("want 2 metrics, got %v", m)
	}
}

func TestMetricsOfDisk(t *testing.T) {
	kind, m, err := metricsOf([]byte(diskJSON))
	if err != nil {
		t.Fatal(err)
	}
	if kind != "BenchmarkDiskSweep" {
		t.Fatalf("kind %q", kind)
	}
	if m["sched=fifo pages/sec"] != 5000 || m["sched=elevator pages/sec"] != 9000 {
		t.Fatalf("metrics %v", m)
	}
	if m["elevator speedup"] != 1.8 {
		t.Fatalf("speedup missing: %v", m)
	}
}

func TestMetricsOfLoad(t *testing.T) {
	kind, m, err := metricsOf([]byte(loadJSON))
	if err != nil {
		t.Fatal(err)
	}
	if kind != "mqload" {
		t.Fatalf("kind %q", kind)
	}
	want := map[string]float64{
		"cf offered=25 qps":   24.8,
		"cf offered=50 qps":   49.1,
		"fifo offered=25 qps": 24.5,
	}
	for k, v := range want {
		if m[k] != v {
			t.Errorf("%s = %v, want %v (all: %v)", k, m[k], v, m)
		}
	}
}

func TestMetricsOfRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"not json",
		`{"benchmark": "mystery"}`,
		`{"benchmark": "BenchmarkScaling", "points": []}`,
	} {
		if _, _, err := metricsOf([]byte(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestCompareWithinTolerance(t *testing.T) {
	base := map[string]float64{"a": 100, "b": 50}
	fresh := map[string]float64{"a": 80, "b": 45}
	report, failures := compare(base, fresh, 0.5)
	if len(failures) != 0 {
		t.Fatalf("unexpected failures %v\n%s", failures, report)
	}
	if !strings.Contains(report, "ok") {
		t.Fatalf("report lacks ok lines:\n%s", report)
	}
}

func TestCompareRegression(t *testing.T) {
	base := map[string]float64{"a": 100, "b": 50}
	fresh := map[string]float64{"a": 40, "b": 49}
	_, failures := compare(base, fresh, 0.5)
	if len(failures) != 1 || !strings.Contains(failures[0], "a:") {
		t.Fatalf("want exactly the regression on a, got %v", failures)
	}
}

func TestCompareBoundaryIsInclusive(t *testing.T) {
	// Exactly baseline*(1-tol) passes; only strictly below fails.
	base := map[string]float64{"a": 100}
	if _, failures := compare(base, map[string]float64{"a": 50}, 0.5); len(failures) != 0 {
		t.Fatalf("f == b*(1-tol) should pass, got %v", failures)
	}
	if _, failures := compare(base, map[string]float64{"a": 49.99}, 0.5); len(failures) != 1 {
		t.Fatalf("f < b*(1-tol) should fail, got %v", failures)
	}
}

func TestCompareMissingMetricFails(t *testing.T) {
	base := map[string]float64{"a": 100, "gone": 10}
	fresh := map[string]float64{"a": 100}
	report, failures := compare(base, fresh, 0.5)
	if len(failures) != 1 || !strings.Contains(failures[0], "gone") {
		t.Fatalf("missing metric should fail, got %v", failures)
	}
	if !strings.Contains(report, "MISSING") {
		t.Fatalf("report does not flag the hole:\n%s", report)
	}
}

func TestCompareNewMetricIsInformational(t *testing.T) {
	base := map[string]float64{"a": 100}
	fresh := map[string]float64{"a": 100, "shiny": 7}
	report, failures := compare(base, fresh, 0.5)
	if len(failures) != 0 {
		t.Fatalf("fresh-only metric must not fail: %v", failures)
	}
	if !strings.Contains(report, "shiny") || !strings.Contains(report, "new metric") {
		t.Fatalf("report omits new metric:\n%s", report)
	}
}
