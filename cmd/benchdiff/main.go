// Command benchdiff is the CI bench-regression gate: it compares a freshly
// measured benchmark JSON against the committed baseline and exits nonzero
// when any throughput metric regresses beyond the tolerance, turning the
// previously upload-only artifacts into a pass/fail check.
//
// It understands the seven result formats the repository commits:
// BENCH_scaling.json (BenchmarkScaling: qps per thread count),
// BENCH_disk.json (BenchmarkDiskSweep: pages/sec per discipline plus the
// elevator speedup), BENCH_load.json (mqload: achieved qps per strategy and
// offered rate), BENCH_cache.json (BenchmarkCacheSweep: reused-bytes
// fraction and achieved qps per cache policy and rate, plus the cost-over-lru
// reuse-gain and p95-speedup ratios — all deterministic virtual-time
// numbers), BENCH_batch.json (BenchmarkBatchSweep: the batch-vs-cnbf
// crossover; only the batch/cnbf qps-gain and p95-guard ratios are gated —
// they are same-machine ratios, while absolute qps is wall-clock),
// BENCH_cluster.json (BenchmarkClusterSweep: per-arm reuse fractions plus
// the 4-vs-1-backend scale-out ratio and the affine-vs-dataset reuse gain —
// absolute qps is wall-clock and does not gate), and
// BENCH_kernels.json (the {vm, vol, large_query} kernel composite; only the
// opt-vs-ref speedup ratios are gated — absolute MB/s varies too much
// across runner hardware). Only higher-is-better metrics are gated —
// absolute latencies vary too much across runner hardware to compare, so
// lower-is-better latencies gate via ratios.
//
// Usage:
//
//	benchdiff -baseline BENCH_scaling.json -fresh scaling.json -tolerance 0.5
//
// A fresh metric f against baseline b fails when f < b·(1-tolerance); a
// metric present in the baseline but missing from the fresh file fails
// outright (a shape change must ship a new baseline).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

func main() {
	var (
		basePath = flag.String("baseline", "", "committed baseline JSON (required)")
		fresh    = flag.String("fresh", "", "freshly measured JSON (required)")
		tol      = flag.Float64("tolerance", 0.5, "allowed fractional regression in [0, 1): 0.5 fails below half the baseline")
	)
	flag.Parse()
	switch {
	case *basePath == "" || *fresh == "":
		usageError(fmt.Errorf("both -baseline and -fresh are required"))
	case flag.NArg() > 0:
		usageError(fmt.Errorf("unexpected arguments %q", flag.Args()))
	case *tol < 0 || *tol >= 1:
		usageError(fmt.Errorf("tolerance %v outside [0, 1)", *tol))
	}

	baseKind, base, err := metricsOfFile(*basePath)
	if err != nil {
		fatal(err)
	}
	freshKind, got, err := metricsOfFile(*fresh)
	if err != nil {
		fatal(err)
	}
	if baseKind != freshKind {
		fatal(fmt.Errorf("comparing %s baseline against %s fresh results", baseKind, freshKind))
	}

	report, failures := compare(base, got, *tol)
	fmt.Printf("benchdiff: %s, tolerance %.0f%%\n", baseKind, *tol*100)
	fmt.Print(report)
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s):\n", len(failures))
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  "+f)
		}
		os.Exit(1)
	}
	fmt.Println("benchdiff: ok")
}

// metricsOfFile extracts the higher-is-better metrics of a results file,
// keyed by a stable human-readable name.
func metricsOfFile(path string) (kind string, metrics map[string]float64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", nil, err
	}
	return metricsOf(data)
}

func metricsOf(data []byte) (kind string, metrics map[string]float64, err error) {
	var probe struct {
		Benchmark string `json:"benchmark"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return "", nil, fmt.Errorf("benchdiff: not a results file: %w", err)
	}
	metrics = map[string]float64{}
	switch probe.Benchmark {
	case "BenchmarkScaling":
		var f struct {
			Points []struct {
				Threads int     `json:"threads"`
				QPS     float64 `json:"qps"`
			} `json:"points"`
		}
		if err := json.Unmarshal(data, &f); err != nil {
			return "", nil, err
		}
		for _, p := range f.Points {
			metrics[fmt.Sprintf("threads=%d qps", p.Threads)] = p.QPS
		}
	case "BenchmarkDiskSweep":
		var f struct {
			Points []struct {
				Sched       string  `json:"sched"`
				PagesPerSec float64 `json:"pages_per_sec"`
			} `json:"points"`
			Speedup float64 `json:"elevator_speedup"`
		}
		if err := json.Unmarshal(data, &f); err != nil {
			return "", nil, err
		}
		for _, p := range f.Points {
			metrics[fmt.Sprintf("sched=%s pages/sec", p.Sched)] = p.PagesPerSec
		}
		if f.Speedup != 0 {
			metrics["elevator speedup"] = f.Speedup
		}
	case "BenchmarkCacheSweep":
		var f struct {
			Points []struct {
				Policy      string  `json:"policy"`
				RateQPS     float64 `json:"rate_qps"`
				ReusedFrac  float64 `json:"reused_frac"`
				AchievedQPS float64 `json:"achieved_qps"`
			} `json:"points"`
			ReuseGain  float64 `json:"cost_reuse_gain"`
			P95Speedup float64 `json:"cost_p95_speedup"`
		}
		if err := json.Unmarshal(data, &f); err != nil {
			return "", nil, err
		}
		// The sweep runs on virtual time, so every metric here is
		// deterministic and gates; p95 itself is lower-is-better and is
		// gated through the cost/lru speedup ratio instead.
		for _, p := range f.Points {
			metrics[fmt.Sprintf("%s rate=%g reused_frac", p.Policy, p.RateQPS)] = p.ReusedFrac
			metrics[fmt.Sprintf("%s rate=%g qps", p.Policy, p.RateQPS)] = p.AchievedQPS
		}
		if f.ReuseGain != 0 {
			metrics["cost reuse gain"] = f.ReuseGain
		}
		if f.P95Speedup != 0 {
			metrics["cost p95 speedup"] = f.P95Speedup
		}
	case "BenchmarkBatchSweep":
		var f struct {
			QPSGain  float64 `json:"high_overlap_qps_gain"`
			P95Guard float64 `json:"low_overlap_p95_guard"`
		}
		if err := json.Unmarshal(data, &f); err != nil {
			return "", nil, err
		}
		// Absolute per-arm qps is wall-clock and swings with runner load;
		// the two crossover ratios are batch-vs-cnbf on the same machine in
		// the same run, so they gate.
		if f.QPSGain != 0 {
			metrics["high overlap qps gain"] = f.QPSGain
		}
		if f.P95Guard != 0 {
			metrics["low overlap p95 guard"] = f.P95Guard
		}
	case "BenchmarkClusterSweep":
		var f struct {
			Points []struct {
				Backends    int     `json:"backends"`
				Routing     string  `json:"routing"`
				AchievedQPS float64 `json:"achieved_qps"`
				MeanReuse   float64 `json:"mean_reuse"`
			} `json:"points"`
			ScalingX4       float64 `json:"scaling_x4"`
			AffineReuseGain float64 `json:"affine_reuse_gain"`
		}
		if err := json.Unmarshal(data, &f); err != nil {
			return "", nil, err
		}
		// Absolute qps per arm is wall-clock; the scale-out ratio
		// (4-backend vs 1-backend affine) and the affine-vs-dataset reuse
		// gain are same-machine same-run ratios, so they gate. Reuse
		// fractions are server-reported and stable, so they gate too.
		for _, p := range f.Points {
			metrics[fmt.Sprintf("backends=%d routing=%s reuse", p.Backends, p.Routing)] = p.MeanReuse
		}
		if f.ScalingX4 != 0 {
			metrics["cluster scaling x4"] = f.ScalingX4
		}
		if f.AffineReuseGain != 0 {
			metrics["affine reuse gain"] = f.AffineReuseGain
		}
	case "mqload":
		var f struct {
			Strategies []struct {
				Name   string `json:"name"`
				Points []struct {
					OfferedQPS  float64 `json:"offered_qps"`
					AchievedQPS float64 `json:"achieved_qps"`
				} `json:"points"`
			} `json:"strategies"`
		}
		if err := json.Unmarshal(data, &f); err != nil {
			return "", nil, err
		}
		for _, s := range f.Strategies {
			for _, p := range s.Points {
				metrics[fmt.Sprintf("%s offered=%g qps", s.Name, p.OfferedQPS)] = p.AchievedQPS
			}
		}
	case "":
		// No top-level benchmark key: the kernels composite
		// ({vm, vol, large_query}) CI assembles with jq.
		return kernelsMetrics(data)
	default:
		return "", nil, fmt.Errorf("benchdiff: unknown benchmark %q", probe.Benchmark)
	}
	if len(metrics) == 0 {
		return "", nil, fmt.Errorf("benchdiff: %s results carry no metrics", probe.Benchmark)
	}
	return probe.Benchmark, metrics, nil
}

// kernelsMetrics parses the BENCH_kernels.json composite. Speedup ratios
// (optimised vs reference kernel on the same machine) are
// hardware-normalized, so they gate; raw MB/s does not.
func kernelsMetrics(data []byte) (string, map[string]float64, error) {
	type kernelSet struct {
		Kernels []struct {
			Kernel  string  `json:"kernel"`
			Speedup float64 `json:"speedup"`
		} `json:"kernels"`
	}
	var f struct {
		VM         kernelSet `json:"vm"`
		Vol        kernelSet `json:"vol"`
		LargeQuery struct {
			Points []struct {
				Op      string  `json:"op"`
				Workers int     `json:"workers"`
				Speedup float64 `json:"speedup"`
			} `json:"points"`
		} `json:"large_query"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return "", nil, err
	}
	metrics := map[string]float64{}
	for _, k := range append(f.VM.Kernels, f.Vol.Kernels...) {
		if k.Kernel != "" && k.Speedup > 0 {
			metrics[k.Kernel+" speedup"] = k.Speedup
		}
	}
	for _, p := range f.LargeQuery.Points {
		// workers=1 is the definition point (speedup 1 by construction);
		// gating it would only test the division.
		if p.Workers > 1 && p.Speedup > 0 {
			metrics[fmt.Sprintf("large_query/%s workers=%d speedup", p.Op, p.Workers)] = p.Speedup
		}
	}
	if len(metrics) == 0 {
		return "", nil, fmt.Errorf("benchdiff: no benchmark key and no kernel composite content")
	}
	return "kernels", metrics, nil
}

// compare renders a per-metric table and collects the failures: regressions
// beyond the tolerance and baseline metrics missing from the fresh run.
// Fresh-only metrics are reported but never fail — they gate once a new
// baseline commits them.
func compare(base, fresh map[string]float64, tol float64) (report string, failures []string) {
	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b := base[k]
		f, ok := fresh[k]
		if !ok {
			report += fmt.Sprintf("  %-28s baseline %10.2f  fresh    MISSING\n", k, b)
			failures = append(failures, fmt.Sprintf("%s: missing from fresh results", k))
			continue
		}
		status := "ok"
		ratio := 0.0
		if b > 0 {
			ratio = f / b
			if ratio < 1-tol {
				status = "REGRESSION"
				failures = append(failures, fmt.Sprintf("%s: %.2f vs baseline %.2f (%.0f%% of baseline, floor %.0f%%)",
					k, f, b, ratio*100, (1-tol)*100))
			}
		}
		report += fmt.Sprintf("  %-28s baseline %10.2f  fresh %10.2f  (%3.0f%%)  %s\n", k, b, f, ratio*100, status)
	}
	extra := make([]string, 0)
	for k := range fresh {
		if _, ok := base[k]; !ok {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	for _, k := range extra {
		report += fmt.Sprintf("  %-28s baseline    (none)  fresh %10.2f  new metric\n", k, fresh[k])
	}
	return report, failures
}

func usageError(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	flag.Usage()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
