// Command mqdriver emulates multiple simultaneous clients against a running
// mqserver over TCP, like the driver program of the paper's evaluation
// (which ran on a cluster of PCs connected to the SMP). It generates a
// hotspot browsing workload and reports client-observed latency statistics.
//
// Usage:
//
//	mqdriver -addr localhost:9123 -clients 8 -queries 16 -slide slide1 -op subsample
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"sync"
	"time"

	"mqsched/internal/netproto"
	"mqsched/internal/stats"
)

func main() {
	var (
		addr    = flag.String("addr", "localhost:9123", "server address")
		clients = flag.Int("clients", 8, "number of concurrent emulated clients")
		queries = flag.Int("queries", 16, "queries per client")
		slide   = flag.String("slide", "slide1", "slide to browse")
		side    = flag.Int64("side", 16384, "slide edge in pixels (must match the server)")
		outSide = flag.Int64("out", 512, "output image edge in pixels")
		op      = flag.String("op", "subsample", "processing function")
		seed    = flag.Int64("seed", 1, "workload seed")
		think   = flag.Duration("think", 0, "client think time between queries")
	)
	flag.Parse()
	switch {
	case flag.NArg() > 0:
		usageError("unexpected arguments %q", flag.Args())
	case *clients < 1:
		usageError("-clients %d: need at least one client", *clients)
	case *queries < 1:
		usageError("-queries %d: need at least one query per client", *queries)
	case *side < 1:
		usageError("-side %d: slide edge must be positive", *side)
	case *outSide < 1:
		usageError("-out %d: output edge must be positive", *outSide)
	case *outSide > *side:
		usageError("-out %d exceeds -side %d: output cannot outsize the slide", *outSide, *side)
	case *think < 0:
		usageError("-think %v: think time cannot be negative", *think)
	}

	var (
		mu        sync.Mutex
		latencies []float64
		reuseSum  float64
		count     int
	)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			nc, err := net.Dial("tcp", *addr)
			if err != nil {
				log.Printf("client %d: %v", c, err)
				return
			}
			defer nc.Close()
			conn := netproto.NewConn(nc)
			rng := rand.New(rand.NewSource(*seed + int64(c)*7919))
			for q := 0; q < *queries; q++ {
				zoom := []int64{1, 2, 4, 8}[rng.Intn(4)]
				w := *outSide * zoom
				if w > *side {
					w = *side
				}
				span := *side - w
				hx := []int64{*side / 4, 3 * *side / 4}[rng.Intn(2)]
				x0 := clamp(hx-w/2+int64(rng.NormFloat64()*900), 0, span)
				y0 := clamp(hx-w/2+int64(rng.NormFloat64()*900), 0, span)
				req := &netproto.Request{
					Slide: *slide,
					X0:    x0, Y0: y0, X1: x0 + w, Y1: y0 + w,
					Zoom: zoom, Op: *op, OmitPixels: true,
				}
				t0 := time.Now()
				if err := conn.WriteRequest(req); err != nil {
					log.Printf("client %d: %v", c, err)
					return
				}
				resp, err := conn.ReadResponse()
				if err != nil {
					log.Printf("client %d: %v", c, err)
					return
				}
				if resp.Err != "" {
					log.Printf("client %d: server: %s", c, resp.Err)
					return
				}
				mu.Lock()
				latencies = append(latencies, time.Since(t0).Seconds()*1000)
				reuseSum += resp.ReusedFrac
				count++
				mu.Unlock()
				if *think > 0 {
					time.Sleep(*think)
				}
			}
		}(c)
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if count == 0 {
		log.Fatal("no queries completed")
	}
	s := stats.Summarize(latencies)
	fmt.Printf("%d queries from %d clients in %s\n", count, *clients, time.Since(start).Round(time.Millisecond))
	fmt.Printf("latency ms: mean=%.1f trimmed95=%.1f p50=%.1f p95=%.1f max=%.1f\n",
		s.Mean, s.TrimmedMean, s.P50, s.P95, s.Max)
	fmt.Printf("mean reuse: %.0f%%\n", reuseSum/float64(count)*100)
}

func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mqdriver: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func clamp(v, lo, hi int64) int64 {
	if hi < lo {
		hi = lo
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
