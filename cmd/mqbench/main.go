// Command mqbench regenerates the paper's evaluation artifacts (every table
// and figure of §5) on the simulated runtime, printing aligned text tables
// and optionally CSV files.
//
// Usage:
//
//	mqbench -experiment=fig4 -op=subsample
//	mqbench -experiment=all -clients=16 -queries=16 -csv=out/
//
// Experiments: e1 (caching effect), fig4, fig5, fig6, fig7, a1 (CF alpha),
// a2 (PS dedup), a3 (blocking), calibration, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mqsched"
	"mqsched/internal/disk"
	"mqsched/internal/driver"
	"mqsched/internal/experiment"
	"mqsched/internal/metrics"
	"mqsched/internal/sched"
	"mqsched/internal/trace"
	"mqsched/internal/vm"
)

func main() {
	var (
		expName  = flag.String("experiment", "all", "experiment id: e1, fig4, fig5, fig6, fig7, a1, a2, a3, a4, x1, x2, x3, v1, timeline, calibration, all")
		opName   = flag.String("op", "both", "VM implementation: subsample, average, both")
		clients  = flag.Int("clients", 16, "number of emulated clients")
		queries  = flag.Int("queries", 16, "queries per client")
		threads  = flag.Int("threads", 4, "query threads (where not swept)")
		cpus     = flag.Int("cpus", 24, "processors of the simulated SMP")
		disks    = flag.Int("disks", 4, "spindles in the disk farm")
		ioSched  = flag.String("io-sched", "fifo", "per-spindle service discipline: fifo (the paper's model) or elevator (reorder + merge)")
		ioBatch  = flag.Int("io-batch", 0, "max distinct pages per merged elevator transfer (0 = default 16)")
		ioDelay  = flag.Int("io-maxdelay", 0, "elevator starvation bound in bypassing dispatches (0 = default 8, negative = unbounded)")
		psPre    = flag.Int("psprefetch", 0, "cap on concurrent background page prefetches (0 = 2x spindles, negative = unlimited)")
		dsPolicy = flag.String("ds-policy", "lru", "data store cache policy: lru (the paper's cache-everything store) or cost (benefit-aware eviction + admission + materialization)")
		seed     = flag.Int64("seed", 1, "workload seed")
		slideSz  = flag.Int64("slide-side", 0, "slide edge in pixels (0 = the paper's 30000); small values keep -trace-out captures compact")
		csvDir   = flag.String("csv", "", "directory to write CSV copies of each table")
		dumpWl   = flag.String("dumpworkload", "", "write the generated workload (both ops) as JSON to this path and exit")
		loadWl   = flag.String("workload", "", "replay a saved workload (JSON) through a single run instead of an experiment sweep")
		policy   = flag.String("policy", "cnbf", "ranking strategy for -workload and -trace-out single runs: "+strings.Join(sched.Names(), ", "))
		batchS   = flag.Float64("batch-starvation", 0, "batch policy aging blend toward arrival order (0 = default, negative disables aging)")
		batchG   = flag.Int("batch-group", 0, "max queries claimed per batch dispatch (0 = default)")
		computeW = flag.Int("compute-workers", 0, "intra-query compute worker bound, wired through to saved configs (0 = GOMAXPROCS on the real runtime; the simulated runtime is always serial)")
		traceOut = flag.String("trace-out", "", "run one traced configuration and write its span trees as Chrome trace_event JSON to this path (open in chrome://tracing or Perfetto)")
	)
	flag.Parse()
	switch {
	case flag.NArg() > 0:
		usageError("unexpected arguments %q", flag.Args())
	case *clients < 1:
		usageError("-clients %d: need at least one client", *clients)
	case *queries < 1:
		usageError("-queries %d: need at least one query per client", *queries)
	case *threads < 1:
		usageError("-threads %d: need at least one query thread", *threads)
	case *cpus < 1:
		usageError("-cpus %d: the simulated SMP needs a processor", *cpus)
	case *disks < 1:
		usageError("-disks %d: the farm needs a spindle", *disks)
	case *dumpWl != "" && *loadWl != "":
		usageError("-dumpworkload and -workload are mutually exclusive")
	}

	ops, err := parseOps(*opName)
	if err != nil {
		fatal(err)
	}
	ioSchedKind, err := disk.ParseSched(*ioSched)
	if err != nil {
		fatal(err)
	}
	base := experiment.Config{
		Clients:            *clients,
		QueriesPerClient:   *queries,
		Threads:            *threads,
		CPUs:               *cpus,
		Disks:              *disks,
		IOSched:            ioSchedKind,
		IOBatchPages:       *ioBatch,
		IOMaxDelay:         *ioDelay,
		Seed:               *seed,
		SlideSide:          *slideSz,
		PSPrefetchLimit:    *psPre,
		DSPolicy:           *dsPolicy,
		ComputeParallelism: *computeW,
		BatchStarvation:    *batchS,
		BatchMaxGroup:      *batchG,
	}

	if *dumpWl != "" {
		if err := dumpWorkload(*dumpWl, base, ops[0]); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *dumpWl)
		return
	}

	if *loadWl != "" || *traceOut != "" {
		if err := replayWorkload(*loadWl, base, *policy, ops[0], *traceOut); err != nil {
			fatal(err)
		}
		return
	}

	start := time.Now()
	if *expName == "timeline" {
		for _, op := range ops {
			cfg := base
			cfg.Op = op
			rep, err := experiment.TimelineReport(cfg, nil)
			if err != nil {
				fatal(err)
			}
			fmt.Println(rep)
		}
		fmt.Printf("total wall time: %s\n", time.Since(start).Round(time.Millisecond))
		return
	}
	for _, spec := range selectExperiments(*expName) {
		for _, op := range ops {
			if spec.singleOp && op != ops[0] {
				continue // op-independent experiments run once
			}
			cfg := base
			cfg.Op = op
			tb, err := spec.run(cfg)
			if err != nil {
				fatal(err)
			}
			fmt.Println(tb.String())
			if *csvDir != "" {
				if err := writeCSV(*csvDir, spec.id, op, spec.singleOp, &tb); err != nil {
					fatal(err)
				}
			}
		}
	}
	fmt.Printf("total wall time: %s\n", time.Since(start).Round(time.Millisecond))
}

type spec struct {
	id       string
	singleOp bool // experiment already covers both ops internally
	run      func(experiment.Config) (experiment.Table, error)
}

func selectExperiments(name string) []spec {
	all := []spec{
		{"e1", true, func(c experiment.Config) (experiment.Table, error) { return experiment.CachingEffect(c) }},
		{"fig4", false, func(c experiment.Config) (experiment.Table, error) { return experiment.ResponseVsThreads(c, nil) }},
		{"fig5", false, func(c experiment.Config) (experiment.Table, error) { return experiment.OverlapVsMemory(c, nil) }},
		{"fig6", false, func(c experiment.Config) (experiment.Table, error) { return experiment.ResponseVsMemory(c, nil) }},
		{"fig7", false, func(c experiment.Config) (experiment.Table, error) { return experiment.BatchVsMemory(c, nil) }},
		{"a1", false, func(c experiment.Config) (experiment.Table, error) { return experiment.CFAlphaAblation(c, nil) }},
		{"a2", false, func(c experiment.Config) (experiment.Table, error) { return experiment.PageSpaceAblation(c) }},
		{"a3", false, func(c experiment.Config) (experiment.Table, error) { return experiment.BlockingAblation(c) }},
		{"a4", false, func(c experiment.Config) (experiment.Table, error) { return experiment.PrefetchAblation(c, nil) }},
		{"x2", false, func(c experiment.Config) (experiment.Table, error) { return experiment.WorkloadSensitivity(c) }},
		{"x3", false, func(c experiment.Config) (experiment.Table, error) { return experiment.SeedSensitivity(c, nil) }},
		{"x1", false, func(c experiment.Config) (experiment.Table, error) { return experiment.ExtensionsComparison(c) }},
		{"v1", true, func(c experiment.Config) (experiment.Table, error) { return experiment.VolumeComparison(c) }},
		{"calibration", true, func(c experiment.Config) (experiment.Table, error) { return experiment.Calibration(c) }},
	}
	if name == "all" {
		return all
	}
	for _, s := range all {
		if s.id == name {
			return []spec{s}
		}
	}
	fatal(fmt.Errorf("unknown experiment %q (want e1, fig4..fig7, a1..a3, x1, calibration, all)", name))
	return nil
}

func parseOps(name string) ([]vm.Op, error) {
	switch name {
	case "both":
		return []vm.Op{vm.Subsample, vm.Average}, nil
	default:
		op, err := vm.ParseOp(name)
		if err != nil {
			return nil, err
		}
		return []vm.Op{op}, nil
	}
}

func writeCSV(dir, id string, op vm.Op, singleOp bool, tb *experiment.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := id
	if !singleOp {
		name += "_" + strings.ReplaceAll(op.String(), " ", "_")
	}
	return os.WriteFile(filepath.Join(dir, name+".csv"), []byte(tb.CSV()), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mqbench:", err)
	os.Exit(1)
}

func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mqbench: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

// dumpWorkload writes the workload an experiment would run, for inspection
// or replay.
func dumpWorkload(path string, base experiment.Config, op vm.Op) error {
	table := driver.PaperSlides()
	queries := driver.Generate(driver.WorkloadConfig{
		Clients:          base.Clients,
		QueriesPerClient: base.QueriesPerClient,
		Op:               op,
		Seed:             base.Seed,
	}, table)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return driver.SaveWorkload(f, queries)
}

// replayWorkload runs one configuration to completion — replaying a saved
// workload when path is non-empty, generating one from the base config
// otherwise — and prints the headline numbers, the span-derived per-strategy
// percentiles, and the structured end-of-run metrics summary (every
// subsystem counter, gauge, and latency histogram from the unified
// registry). When traceOut is non-empty the run is span-traced and the span
// trees are written there as Chrome trace_event JSON.
func replayWorkload(path string, base experiment.Config, policy string, op vm.Op, traceOut string) error {
	var queries [][]vm.Meta
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		queries, err = driver.LoadWorkload(f, driver.PaperSlides())
		if err != nil {
			return err
		}
	}
	cfg := base
	cfg.Policy = policy
	cfg.Op = op
	cfg.Metrics = metrics.NewRegistry()
	cfg.TraceCapacity = 1 << 16
	m, err := experiment.RunWorkload(cfg, queries)
	if err != nil {
		return err
	}
	verb := "replayed"
	if path == "" {
		verb = "ran"
	}
	fmt.Printf("%s %d queries under %s: trimmed response %.3fs, mean wait %.3fs, overlap %.3f, makespan %.1fs\n",
		verb, m.Queries, m.Policy, m.TrimmedResponse, m.MeanWait, m.AvgOverlap, m.Makespan)
	// Output-side throughput makes kernel-level wins visible in workload
	// runs, not just microbenchmarks: reused bytes came from projecting
	// cached results, computed bytes from the raw-chunk kernels.
	if m.Makespan > 0 {
		const mb = 1 << 20
		fmt.Printf("throughput: %.2f queries/s, output %.1f MB/s reused + %.1f MB/s computed\n",
			float64(m.Queries)/m.Makespan,
			float64(m.Server.ReusedOutputBytes)/mb/m.Makespan,
			float64(m.Server.ComputedOutputBytes)/mb/m.Makespan)
	}
	if d := m.Disk; d.Batches > 0 {
		fmt.Printf("disk elevator: %d batches (%.2f pages/batch), %d merged reads, max reorder %d\n",
			d.Batches, float64(d.BatchPagesSum)/float64(d.Batches), d.MergedReads, d.MaxReorder)
	}
	fmt.Println("\nspan-derived percentiles (seconds, simulated time):")
	fmt.Print(trace.FormatStrategyStats(m.Spans.StrategyStats()))
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := m.Spans.WriteChromeInfo(f, mqsched.BuildInfo()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nwrote %d spans (%d dropped) to %s\n", m.Spans.Len(), m.Spans.Dropped(), traceOut)
	}
	fmt.Println("\nend-of-run metrics:")
	fmt.Print(m.Registry.Summary())
	return nil
}
