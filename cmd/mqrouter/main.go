// Command mqrouter fronts a fleet of mqserver backends with one wire-
// compatible endpoint: unmodified mqclient and mqload point at the router
// and their queries fan out across the cluster.
//
// Routing is region-affine — consistent hashing over (dataset, coarse
// spatial cell) keeps overlapping pan/zoom sessions on the backend whose
// semantic cache already holds their state — with a spill to the least-
// loaded healthy backend when the affine target is saturated. Backends are
// health-checked with cheap PING probes (mark-down with exponential
// backoff, mark-up on recovery, graceful drain of in-flight queries).
//
// Usage:
//
//	mqrouter -addr :9123 -backends host1:9123,host2:9123,host3:9123
//
// The METRICS verb answers cluster-wide (backend registry snapshots merged
// with the router's own routing counters), and TRACE splices every
// backend's Chrome export into one timeline with per-backend process rows —
// mqviz pointed at the router sees the whole cluster. The same aggregate
// metrics are served over HTTP on -metrics (path /metrics).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"mqsched/internal/cluster"
	"mqsched/internal/netproto"
)

func main() {
	var (
		addr      = flag.String("addr", ":9123", "listen address")
		backends  = flag.String("backends", "", "comma-separated backend mqserver addresses (required)")
		routing   = flag.String("routing", "affine", "routing key: affine (dataset + spatial cell) or dataset")
		cell      = flag.Int64("cell", 4096, "affine cell side in base-resolution pixels")
		replicas  = flag.Int("replicas", 64, "virtual ring points per backend")
		pool      = flag.Int("pool", 8, "connections pooled per backend")
		spill     = flag.Int("spill-depth", 8, "in-flight depth at which the affine target spills to the least-loaded backend (negative disables spilling)")
		healthEvr = flag.Duration("health-interval", 2*time.Second, "active PING probe interval (negative disables active checks)")
		maxBack   = flag.Duration("max-backoff", 30*time.Second, "probe backoff cap for down backends")
		dialTO    = flag.Duration("dial-timeout", 5*time.Second, "backend dial timeout")
		metricsAt = flag.String("metrics", ":9124", "HTTP listen address for the cluster-wide /metrics endpoint (empty disables)")
	)
	flag.Parse()

	list, err := splitBackends(*backends)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mqrouter: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	mode, err := cluster.ParseRouting(*routing)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mqrouter: %v\n", err)
		os.Exit(2)
	}
	router, err := cluster.New(cluster.Config{
		Backends:       list,
		Routing:        mode,
		CellSize:       *cell,
		Replicas:       *replicas,
		PoolSize:       *pool,
		SpillDepth:     *spill,
		HealthInterval: *healthEvr,
		MaxBackoff:     *maxBack,
		DialTimeout:    *dialTO,
		Logf:           log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer router.Close()

	if *metricsAt != "" {
		ml, err := net.Listen("tcp", *metricsAt)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("mqrouter: cluster metrics on http://%s/metrics", ml.Addr())
		go func() {
			mux := http.NewServeMux()
			mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
				resp := router.Answer(&netproto.Request{Verb: netproto.VerbMetrics}, netproto.ConnInfo{})
				if resp.Err != "" && resp.Metrics == "" {
					http.Error(w, resp.Err, http.StatusServiceUnavailable)
					return
				}
				fmt.Fprint(w, resp.Metrics)
			})
			log.Fatal(http.Serve(ml, mux))
		}()
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("mqrouter: routing=%s cell=%d spill-depth=%d listening on %s", mode, *cell, *spill, l.Addr())
	for i, b := range list {
		log.Printf("  backend %d: %s", i, b)
	}
	if err := netproto.ServeHandler(l, router, log.Printf); err != nil {
		log.Fatal(err)
	}
}

func splitBackends(s string) ([]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("-backends is required")
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("empty backend address in -backends %q", s)
		}
		out = append(out, part)
	}
	return out, nil
}
