// Command mqserver runs the multi-query Virtual Microscope server live on
// TCP: real goroutines, real pixel data from synthetic slides, the full
// middleware stack (scheduling graph, data store, page space, disk farm
// model). Pair it with cmd/mqclient (single queries, PNG output) or
// cmd/mqdriver (emulated multi-client load).
//
// Usage:
//
//	mqserver -addr :9123 -slides slide1:16384x16384,slide2:8192x8192 -policy cnbf -threads 4
//
// Observability: every subsystem's counters, gauges, and per-strategy latency
// histograms are served in the Prometheus text format on -metrics
// (default :9124, path /metrics), and over the query connection via the
// METRICS verb. The same listener serves per-query span trees as Chrome
// trace_event JSON on /trace (open in chrome://tracing or Perfetto) and the
// Go runtime profiles on /debug/pprof/. Queries slower than -slowlog (or the
// -slowlog-pct trailing percentile) have their span trees printed to the log
// and are retrievable over the query connection via the TRACE verb.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"mqsched"
	"mqsched/internal/disk"
	"mqsched/internal/metrics"
	"mqsched/internal/netproto"
	"mqsched/internal/sched"
	"mqsched/internal/trace"
)

func main() {
	var (
		addr       = flag.String("addr", ":9123", "listen address")
		slides     = flag.String("slides", "slide1:16384x16384,slide2:16384x16384,slide3:16384x16384", "comma-separated name:WxH slide list")
		policy     = flag.String("policy", "cf", "ranking strategy: "+strings.Join(sched.Names(), ", "))
		batchStarv = flag.Float64("batch-starvation", 0, "batch policy aging blend toward arrival order (0 = default, negative disables aging)")
		batchGroup = flag.Int("batch-group", 0, "max queries claimed per batch dispatch (0 = default)")
		threads    = flag.Int("threads", 4, "query threads")
		dsMB       = flag.Int64("ds", 64, "data store MB (-1 disables caching)")
		dsPolicy   = flag.String("ds-policy", "lru", "data store cache policy: lru (the paper's cache-everything store) or cost (benefit-aware eviction + admission control + proactive materialization)")
		dsMatLimit = flag.Int("ds-materialize", 0, "max concurrent proactive-materialization queries under -ds-policy=cost (0 = default 2, negative disables)")
		psMB       = flag.Int64("ps", 32, "page space MB")
		timeScale  = flag.Float64("timescale", 0.002, "compression of modelled disk time")
		metricsAt  = flag.String("metrics", ":9124", "HTTP listen address for the /metrics, /trace, and /debug/pprof endpoints (empty disables)")
		traceCap   = flag.Int("trace-buffer", 16384, "span ring-buffer capacity (0 disables span tracing)")
		slowlog    = flag.Duration("slowlog", 0, "log the span tree of queries slower than this (runtime clock; 0 disables the fixed threshold)")
		slowlogPct = flag.Float64("slowlog-pct", 0, "log queries slower than this trailing percentile of recent responses, e.g. 99 (0 disables)")
		computeW   = flag.Int("compute-workers", 0, "intra-query compute worker bound (0 = GOMAXPROCS, 1 = serial per-query loop)")
		ioSched    = flag.String("io-sched", "fifo", "per-spindle service discipline: fifo (the paper's model) or elevator (reorder + merge)")
		ioBatch    = flag.Int("io-batch", 0, "max distinct pages per merged elevator transfer (0 = default 16)")
		ioDelay    = flag.Int("io-maxdelay", 0, "elevator starvation bound in bypassing dispatches (0 = default 8, negative = unbounded)")
	)
	flag.Parse()

	specs, err := parseSlides(*slides)
	if err != nil {
		log.Fatal(err)
	}
	dsBudget := *dsMB * (1 << 20)
	if *dsMB < 0 {
		dsBudget = -1
	}
	ioSchedKind, err := disk.ParseSched(*ioSched)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := mqsched.New(mqsched.Config{
		Mode:                mqsched.Real,
		Policy:              *policy,
		BatchStarvation:     *batchStarv,
		BatchMaxGroup:       *batchGroup,
		Threads:             *threads,
		IOSched:             ioSchedKind,
		IOBatchPages:        *ioBatch,
		IOMaxDelay:          *ioDelay,
		DSBudget:            dsBudget,
		DSPolicy:            *dsPolicy,
		DSMaterializeLimit:  *dsMatLimit,
		PSBudget:            *psMB * (1 << 20),
		TimeScale:           *timeScale,
		EnableMetrics:       true,
		TraceSpans:          *traceCap > 0,
		TraceCapacity:       *traceCap,
		SlowQueryThreshold:  *slowlog,
		SlowQueryPercentile: *slowlogPct,
		ComputeParallelism:  *computeW,
	}, mqsched.NewSlideTable(specs...))
	if err != nil {
		log.Fatal(err)
	}

	if *metricsAt != "" {
		ml, err := net.Listen("tcp", *metricsAt)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("mqserver: metrics on http://%s/metrics, traces on /trace, profiles on /debug/pprof/", ml.Addr())
		go func() {
			log.Fatal(http.Serve(ml, metricsMux(sys.Metrics(), sys.Spans())))
		}()
	}
	if sys.Spans() != nil && (*slowlog > 0 || *slowlogPct > 0) {
		go logSlowQueries(sys.Spans())
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("mqserver: policy=%s threads=%d listening on %s", *policy, *threads, l.Addr())
	for _, s := range specs {
		log.Printf("  slide %s: %dx%d", s.Name, s.Width, s.Height)
	}
	if err := netproto.Serve(l, sys, log.Printf); err != nil {
		log.Fatal(err)
	}
}

// metricsMux serves the registry in the Prometheus text exposition format,
// the span ring buffer as Chrome trace_event JSON, and the net/http/pprof
// profile endpoints.
func metricsMux(reg *metrics.Registry, spans *trace.Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			log.Printf("mqserver: /metrics write: %v", err)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := spans.WriteChromeInfo(w, mqsched.BuildInfo()); err != nil {
			log.Printf("mqserver: /trace write: %v", err)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// logSlowQueries polls the tracer's slow-query log and prints each new
// entry's span tree.
func logSlowQueries(tr *trace.Tracer) {
	var since int64
	for {
		time.Sleep(time.Second)
		for _, e := range tr.SlowEntries(since) {
			log.Printf("mqserver: %s", e.Format())
			if e.Seq > since {
				since = e.Seq
			}
		}
	}
}

func parseSlides(s string) ([]mqsched.Slide, error) {
	var out []mqsched.Slide
	for _, part := range strings.Split(s, ",") {
		name, dims, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("bad slide spec %q (want name:WxH)", part)
		}
		ws, hs, ok := strings.Cut(dims, "x")
		if !ok {
			return nil, fmt.Errorf("bad slide dims %q (want WxH)", dims)
		}
		w, err := strconv.ParseInt(ws, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad slide width %q: %v", ws, err)
		}
		h, err := strconv.ParseInt(hs, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad slide height %q: %v", hs, err)
		}
		out = append(out, mqsched.Slide{Name: name, Width: w, Height: h})
	}
	return out, nil
}
