// Command mqserver runs the multi-query Virtual Microscope server live on
// TCP: real goroutines, real pixel data from synthetic slides, the full
// middleware stack (scheduling graph, data store, page space, disk farm
// model). Pair it with cmd/mqclient (single queries, PNG output) or
// cmd/mqdriver (emulated multi-client load).
//
// Usage:
//
//	mqserver -addr :9123 -slides slide1:16384x16384,slide2:8192x8192 -policy cnbf -threads 4
//
// Observability: every subsystem's counters, gauges, and per-strategy latency
// histograms are served in the Prometheus text format on -metrics
// (default :9124, path /metrics), and over the query connection via the
// METRICS verb.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"strconv"
	"strings"

	"mqsched"
	"mqsched/internal/metrics"
	"mqsched/internal/netproto"
)

func main() {
	var (
		addr      = flag.String("addr", ":9123", "listen address")
		slides    = flag.String("slides", "slide1:16384x16384,slide2:16384x16384,slide3:16384x16384", "comma-separated name:WxH slide list")
		policy    = flag.String("policy", "cf", "ranking strategy: fifo, muf, ff, cf, cnbf, sjf")
		threads   = flag.Int("threads", 4, "query threads")
		dsMB      = flag.Int64("ds", 64, "data store MB (-1 disables caching)")
		psMB      = flag.Int64("ps", 32, "page space MB")
		timeScale = flag.Float64("timescale", 0.002, "compression of modelled disk time")
		metricsAt = flag.String("metrics", ":9124", "HTTP listen address for the Prometheus /metrics endpoint (empty disables)")
	)
	flag.Parse()

	specs, err := parseSlides(*slides)
	if err != nil {
		log.Fatal(err)
	}
	dsBudget := *dsMB * (1 << 20)
	if *dsMB < 0 {
		dsBudget = -1
	}
	sys, err := mqsched.New(mqsched.Config{
		Mode:          mqsched.Real,
		Policy:        *policy,
		Threads:       *threads,
		DSBudget:      dsBudget,
		PSBudget:      *psMB * (1 << 20),
		TimeScale:     *timeScale,
		EnableMetrics: true,
	}, mqsched.NewSlideTable(specs...))
	if err != nil {
		log.Fatal(err)
	}

	if *metricsAt != "" {
		ml, err := net.Listen("tcp", *metricsAt)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("mqserver: metrics on http://%s/metrics", ml.Addr())
		go func() {
			log.Fatal(http.Serve(ml, metricsMux(sys.Metrics())))
		}()
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("mqserver: policy=%s threads=%d listening on %s", *policy, *threads, l.Addr())
	for _, s := range specs {
		log.Printf("  slide %s: %dx%d", s.Name, s.Width, s.Height)
	}
	if err := netproto.Serve(l, sys, log.Printf); err != nil {
		log.Fatal(err)
	}
}

// metricsMux serves the registry in the Prometheus text exposition format.
func metricsMux(reg *metrics.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			log.Printf("mqserver: /metrics write: %v", err)
		}
	})
	return mux
}

func parseSlides(s string) ([]mqsched.Slide, error) {
	var out []mqsched.Slide
	for _, part := range strings.Split(s, ",") {
		name, dims, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("bad slide spec %q (want name:WxH)", part)
		}
		ws, hs, ok := strings.Cut(dims, "x")
		if !ok {
			return nil, fmt.Errorf("bad slide dims %q (want WxH)", dims)
		}
		w, err := strconv.ParseInt(ws, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad slide width %q: %v", ws, err)
		}
		h, err := strconv.ParseInt(hs, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad slide height %q: %v", hs, err)
		}
		out = append(out, mqsched.Slide{Name: name, Width: w, Height: h})
	}
	return out, nil
}
