package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mqsched/internal/metrics"
)

func TestParseSlides(t *testing.T) {
	got, err := parseSlides("a:100x200, b:300x400")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "a" || got[0].Width != 100 || got[0].Height != 200 ||
		got[1].Name != "b" || got[1].Width != 300 || got[1].Height != 400 {
		t.Fatalf("parseSlides = %+v", got)
	}
	for _, bad := range []string{"a", "a:100", "a:xx200", "a:100xzz", "a:100x200,b"} {
		if _, err := parseSlides(bad); err == nil {
			t.Errorf("parseSlides(%q) should fail", bad)
		}
	}
}

func TestMetricsMux(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("mqsched_test_total", "a counter").Add(3)

	srv := httptest.NewServer(metricsMux(reg))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# HELP mqsched_test_total a counter",
		"# TYPE mqsched_test_total counter",
		"mqsched_test_total 3",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics body missing %q; got:\n%s", want, body)
		}
	}
}
