package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mqsched/internal/metrics"
	"mqsched/internal/trace"
)

func TestParseSlides(t *testing.T) {
	got, err := parseSlides("a:100x200, b:300x400")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "a" || got[0].Width != 100 || got[0].Height != 200 ||
		got[1].Name != "b" || got[1].Width != 300 || got[1].Height != 400 {
		t.Fatalf("parseSlides = %+v", got)
	}
	for _, bad := range []string{"a", "a:100", "a:xx200", "a:100xzz", "a:100x200,b"} {
		if _, err := parseSlides(bad); err == nil {
			t.Errorf("parseSlides(%q) should fail", bad)
		}
	}
}

func TestMetricsMux(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("mqsched_test_total", "a counter").Add(3)

	srv := httptest.NewServer(metricsMux(reg, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# HELP mqsched_test_total a counter",
		"# TYPE mqsched_test_total counter",
		"mqsched_test_total 3",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics body missing %q; got:\n%s", want, body)
		}
	}
}

func TestTraceAndPprofEndpoints(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := trace.NewTracer(func() time.Duration { return 0 }, trace.TracerOptions{})
	tr.StartRoot(1, "server", "query").Finish()

	srv := httptest.NewServer(metricsMux(reg, tr))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/trace status %d", resp.StatusCode)
	}
	var ct trace.ChromeTrace
	if err := json.NewDecoder(resp.Body).Decode(&ct); err != nil {
		t.Fatalf("/trace is not valid Chrome trace JSON: %v", err)
	}
	if len(ct.TraceEvents) == 0 {
		t.Fatal("/trace returned no events")
	}

	presp, err := http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	defer presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", presp.StatusCode)
	}
}
