package main

import "testing"

func TestParseSlides(t *testing.T) {
	got, err := parseSlides("a:100x200, b:300x400")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "a" || got[0].Width != 100 || got[0].Height != 200 ||
		got[1].Name != "b" || got[1].Width != 300 || got[1].Height != 400 {
		t.Fatalf("parseSlides = %+v", got)
	}
	for _, bad := range []string{"a", "a:100", "a:xx200", "a:100xzz", "a:100x200,b"} {
		if _, err := parseSlides(bad); err == nil {
			t.Errorf("parseSlides(%q) should fail", bad)
		}
	}
}
