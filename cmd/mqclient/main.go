// Command mqclient sends one Virtual Microscope query to a running mqserver
// and writes the answer image as a PNG. With -slowlog it instead streams the
// server's slow-query span trees (TRACE verb) until interrupted; with
// -trace-dump it fetches the server's retained span ring as Chrome
// trace_event JSON for chrome://tracing, Perfetto, or mqviz.
//
// Usage:
//
//	mqclient -addr localhost:9123 -slide slide1 -window 1024,1024,5120,5120 -zoom 4 -op average -o view.png
//	mqclient -addr localhost:9123 -slowlog
//	mqclient -addr localhost:9123 -trace-dump run.json
package main

import (
	"flag"
	"fmt"
	"image"
	"image/png"
	"log"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"mqsched/internal/netproto"
)

func main() {
	var (
		addr    = flag.String("addr", "localhost:9123", "server address")
		slide   = flag.String("slide", "slide1", "slide name")
		window  = flag.String("window", "0,0,4096,4096", "query window x0,y0,x1,y1 at base resolution")
		zoom    = flag.Int64("zoom", 4, "magnification reduction factor N")
		op      = flag.String("op", "subsample", "processing function: subsample or average")
		out     = flag.String("o", "view.png", "output PNG path ('' to skip)")
		slowlog = flag.Bool("slowlog", false, "stream the server's slow-query span trees instead of querying (needs mqserver -slowlog/-slowlog-pct)")
		dump    = flag.String("trace-dump", "", "fetch the server's span ring as Chrome trace_event JSON, write it to this path, and exit ('-' for stdout)")
	)
	flag.Parse()

	coords, err := parseWindow(*window)
	if err != nil {
		log.Fatal(err)
	}

	if *dump != "" {
		if err := dumpTrace(*addr, *dump); err != nil {
			log.Fatal(err)
		}
		return
	}

	nc, err := net.Dial("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	defer nc.Close()
	c := netproto.NewConn(nc)

	if *slowlog {
		if err := streamSlowLog(c); err != nil {
			log.Fatal(err)
		}
		return
	}

	req := &netproto.Request{
		Slide: *slide,
		X0:    coords[0], Y0: coords[1], X1: coords[2], Y1: coords[3],
		Zoom:       *zoom,
		Op:         *op,
		OmitPixels: *out == "",
	}
	if err := c.WriteRequest(req); err != nil {
		log.Fatal(err)
	}
	resp, err := c.ReadResponse()
	if err != nil {
		log.Fatal(err)
	}
	if resp.Err != "" {
		log.Fatalf("server error: %s", resp.Err)
	}
	fmt.Printf("%dx%d image  response=%.1fms (wait %.1fms, exec %.1fms)  reused=%.0f%%\n",
		resp.Width, resp.Height, resp.ResponseMS, resp.WaitMS, resp.ExecMS, resp.ReusedFrac*100)

	if *out == "" {
		return
	}
	if err := writePNG(*out, resp); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote", *out)
}

// dumpTrace snapshots the server's span ring over the TRACE verb and writes
// the Chrome trace_event JSON to path.
func dumpTrace(addr, path string) error {
	c := netproto.NewClient(addr, 0)
	defer c.Close()
	data, err := c.TraceChromeDump()
	if err != nil {
		return err
	}
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d bytes of trace JSON to %s\n", len(data), path)
	return nil
}

// streamSlowLog polls the server's slow-query log over the TRACE verb,
// printing each new entry's span tree as it appears.
func streamSlowLog(c *netproto.Conn) error {
	var since int64
	for {
		if err := c.WriteRequest(&netproto.Request{Verb: netproto.VerbTrace, SinceSeq: since}); err != nil {
			return err
		}
		resp, err := c.ReadResponse()
		if err != nil {
			return err
		}
		if resp.Err != "" {
			return fmt.Errorf("server error: %s", resp.Err)
		}
		if resp.Trace != "" {
			fmt.Print(resp.Trace)
		}
		since = resp.TraceSeq
		time.Sleep(time.Second)
	}
}

func parseWindow(s string) ([4]int64, error) {
	var out [4]int64
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return out, fmt.Errorf("bad window %q (want x0,y0,x1,y1)", s)
	}
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return out, fmt.Errorf("bad window coordinate %q: %v", p, err)
		}
		out[i] = v
	}
	return out, nil
}

func writePNG(path string, resp *netproto.Response) error {
	img := image.NewRGBA(image.Rect(0, 0, int(resp.Width), int(resp.Height)))
	i := 0
	for y := 0; y < int(resp.Height); y++ {
		for x := 0; x < int(resp.Width); x++ {
			o := img.PixOffset(x, y)
			img.Pix[o] = resp.Pixels[i]
			img.Pix[o+1] = resp.Pixels[i+1]
			img.Pix[o+2] = resp.Pixels[i+2]
			img.Pix[o+3] = 0xff
			i += 3
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return png.Encode(f, img)
}
