package main

import "testing"

func TestParseWindow(t *testing.T) {
	got, err := parseWindow("1, 2,3 ,4")
	if err != nil {
		t.Fatal(err)
	}
	if got != [4]int64{1, 2, 3, 4} {
		t.Fatalf("parseWindow = %v", got)
	}
	for _, bad := range []string{"1,2,3", "1,2,3,4,5", "a,2,3,4", ""} {
		if _, err := parseWindow(bad); err == nil {
			t.Errorf("parseWindow(%q) should fail", bad)
		}
	}
}
