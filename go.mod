module mqsched

go 1.22
