package mqsched_test

import (
	"bytes"
	"testing"

	"mqsched"
	"mqsched/internal/load"
	"mqsched/internal/vm"
)

// batchDifferentialStream builds a deterministic overlapping browsing stream
// plus a tail of byte-identical queries, so any run — regardless of worker
// timing — presents the batch executor with groupable work.
func batchDifferentialStream(tableSide int64, op mqsched.Op) []mqsched.VMQuery {
	table := mqsched.NewSlideTable(mqsched.Slide{Name: "s1", Width: tableSide, Height: tableSide})
	items := load.Build(load.GenConfig{
		Users:              6,
		HotspotsPerDataset: 2,
		HotspotZipfS:       1.5,
		OutputSide:         192,
		Zooms:              []int64{2, 4},
		Op:                 op,
		Seed:               11,
	}, table, load.ArrivalConfig{Process: load.Constant, Rate: 1000, Seed: 11}, 24)
	qs := make([]mqsched.VMQuery, 0, len(items)+6)
	for _, it := range items {
		qs = append(qs, it.Meta)
	}
	hot := mqsched.NewVMQuery("s1", mqsched.R(256, 256, 1024, 1024), 4, op)
	for i := 0; i < 6; i++ {
		qs = append(qs, hot)
	}
	return qs
}

// runPolicy executes the stream to completion under one ranking strategy on
// the real (pixel-producing) runtime and returns the per-query output bytes
// in submission order.
func runPolicy(t *testing.T, policy string, qs []mqsched.VMQuery, tableSide int64) ([][]byte, mqsched.Stats) {
	t.Helper()
	table := mqsched.NewSlideTable(mqsched.Slide{Name: "s1", Width: tableSide, Height: tableSide})
	sys, err := mqsched.New(mqsched.Config{Mode: mqsched.Real, Policy: policy, Threads: 4, TimeScale: 0.0002}, table)
	if err != nil {
		t.Fatal(err)
	}
	outs := make([][]byte, len(qs))
	err = sys.RunWith(func(ctx mqsched.Ctx) {
		tks := make([]*mqsched.Ticket, len(qs))
		for i, q := range qs {
			tk, err := sys.Submit(q)
			if err != nil {
				t.Errorf("%s: submit %d: %v", policy, i, err)
				return
			}
			tks[i] = tk
		}
		for i, tk := range tks {
			res := tk.Wait(ctx)
			if res == nil || res.Blob == nil {
				t.Errorf("%s: query %d returned no result", policy, i)
				return
			}
			outs[i] = res.Blob.Data
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return outs, sys.Stats()
}

// TestBatchDifferentialByteIdentity is the correctness contract for the
// data-driven batch executor: on the same overlapping subsampling workload,
// batch-mode results must be byte-for-byte identical to query-at-a-time
// execution (CNBF) and to the rendering oracle. The batch run must also
// actually exercise grouping and fan-out, otherwise the differential proves
// nothing.
//
// The workload uses Subsample deliberately: subsample-of-subsample
// projection is bit-exact at every zoom, so byte-identity must hold on any
// execution path. Averaging is checked separately below — staged integer
// averaging carries a documented ±2-per-stage floor error (see
// vm.TestProjectCrossZoom), which the pre-existing per-query reuse path
// already incurs, so byte-identity is not a meaningful contract for it.
func TestBatchDifferentialByteIdentity(t *testing.T) {
	const side = 4096
	qs := batchDifferentialStream(side, mqsched.Subsample)

	batchOut, batchStats := runPolicy(t, "batch", qs, side)
	cnbfOut, _ := runPolicy(t, "cnbf", qs, side)
	if t.Failed() {
		t.FailNow()
	}

	for i := range qs {
		if !bytes.Equal(batchOut[i], cnbfOut[i]) {
			t.Fatalf("query %d (%v): batch output differs from query-at-a-time output (%d vs %d bytes)",
				i, qs[i], len(batchOut[i]), len(cnbfOut[i]))
		}
		if want := vm.RenderOracle(qs[i]); !bytes.Equal(batchOut[i], want) {
			t.Fatalf("query %d (%v): batch output differs from pixel oracle", i, qs[i])
		}
	}

	if batchStats.Server.BatchGroups == 0 {
		t.Fatalf("batch run never formed a multi-query group (stats %+v); the differential did not exercise fan-out", batchStats.Server)
	}
	if batchStats.Server.BatchFanouts == 0 {
		t.Fatalf("batch run formed %d groups but fanned out zero results; seed projection never fired", batchStats.Server.BatchGroups)
	}
}

// TestBatchDifferentialAverageTolerance bounds the averaging arm: each
// batch-mode result must stay within the staged-averaging floor error of
// the oracle. Direct execution averages base pixels in one stage; every
// projection hop (raw → parent seed → member, or raw → cached → member)
// adds at most one more integer floor, worth ±2 per channel per stage. The
// executor performs at most two hops beyond direct compute, so ±6 total.
func TestBatchDifferentialAverageTolerance(t *testing.T) {
	const side = 4096
	qs := batchDifferentialStream(side, mqsched.Average)

	batchOut, batchStats := runPolicy(t, "batch", qs, side)
	if t.Failed() {
		t.FailNow()
	}

	for i := range qs {
		want := vm.RenderOracle(qs[i])
		if len(batchOut[i]) != len(want) {
			t.Fatalf("query %d: output size %d, oracle %d", i, len(batchOut[i]), len(want))
		}
		for j := range want {
			if d := int(batchOut[i][j]) - int(want[j]); d < -6 || d > 6 {
				t.Fatalf("query %d byte %d: batch %d vs oracle %d exceeds staged-averaging tolerance",
					i, j, batchOut[i][j], want[j])
			}
		}
	}
	if batchStats.Server.BatchGroups == 0 {
		t.Fatal("batch run never formed a multi-query group; tolerance arm did not exercise fan-out")
	}
}
