// Classroom: the paper's motivating scenario (§3) — "an entire class can
// access and individually manipulate the same slide at the same time,
// searching for a particular feature". Twenty students browse overlapping
// regions of one slide concurrently; the demo runs the same workload under
// FIFO and under CNBF on the deterministic simulated runtime and reports the
// response times each student observes.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	"mqsched"
)

const (
	students        = 20
	queriesPerPupil = 5
	slideSide       = int64(16384)
	outputSide      = int64(512)
)

func main() {
	for _, policy := range []string{"fifo", "cnbf"} {
		mean, p95, reuse := run(policy)
		fmt.Printf("%-5s mean response %7.2fs   p95 %7.2fs   avg reuse %4.0f%%\n",
			policy, mean.Seconds(), p95.Seconds(), reuse*100)
	}
	fmt.Println("\nCNBF schedules students whose view can be assembled from already-")
	fmt.Println("cached regions first, so the class shares I/O instead of repeating it.")
}

func run(policy string) (mean, p95 time.Duration, reuse float64) {
	table := mqsched.NewSlideTable(mqsched.Slide{Name: "lecture-slide", Width: slideSide, Height: slideSide})
	sys, err := mqsched.New(mqsched.Config{
		Mode:    mqsched.Simulated,
		Policy:  policy,
		Threads: 4,
	}, table)
	if err != nil {
		log.Fatal(err)
	}

	// Everyone inspects the same feature near the slide's center, at mixed
	// magnifications — heavy overlap, like a teacher directing the class.
	var responses []time.Duration
	var reuseSum float64
	var nDone int
	for i := 0; i < students; i++ {
		i := i
		sys.Start(fmt.Sprintf("student-%d", i), func(ctx mqsched.Ctx) {
			rng := rand.New(rand.NewSource(int64(i) + 1))
			for q := 0; q < queriesPerPupil; q++ {
				zoom := []int64{2, 4, 8}[rng.Intn(3)]
				side := outputSide * zoom
				cx := slideSide/2 + int64(rng.NormFloat64()*1500)
				cy := slideSide/2 + int64(rng.NormFloat64()*1500)
				x0 := clamp(cx-side/2, 0, slideSide-side) / zoom * zoom
				y0 := clamp(cy-side/2, 0, slideSide-side) / zoom * zoom
				qm := mqsched.NewVMQuery("lecture-slide", mqsched.R(x0, y0, x0+side, y0+side), zoom, mqsched.Subsample)
				tk, err := sys.Submit(qm)
				if err != nil {
					log.Fatal(err)
				}
				res := tk.Wait(ctx)
				responses = append(responses, res.ResponseTime())
				reuseSum += res.ReusedFrac
				nDone++
				ctx.Sleep(2 * time.Second) // the student looks at the image
			}
		})
	}
	if err := waitAll(sys); err != nil {
		log.Fatal(err)
	}

	sort.Slice(responses, func(a, b int) bool { return responses[a] < responses[b] })
	var sum time.Duration
	for _, r := range responses {
		sum += r
	}
	mean = sum / time.Duration(len(responses))
	p95 = responses[len(responses)*95/100]
	reuse = reuseSum / float64(nDone)
	return mean, p95, reuse
}

// waitAll runs the simulation to completion; the student processes spawned
// above finish on their own, then the server drains.
func waitAll(sys *mqsched.System) error { return sys.Run() }

func clamp(v, lo, hi int64) int64 {
	if hi < lo {
		hi = lo
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
