// Moviebatch: the paper's batch scenario (§5) — "if we want to create a
// movie from a case study using VM, we may submit a set of queries, each of
// which corresponds to a visualization of the slide being studied. In that
// case, it is important to decrease the overall execution time of the batch
// of queries."
//
// This example renders a camera path that pans across a slide while zooming
// in: 96 frames submitted as one batch. Consecutive frames overlap heavily,
// so locality-aware ranking (CF/CNBF) finishes the batch much faster than
// FIFO. Runs on the deterministic simulated runtime.
package main

import (
	"fmt"
	"log"
	"time"

	"mqsched"
)

const (
	slideSide = int64(24576)
	frameOut  = int64(512) // 512x512 frames
	frames    = 96
)

func main() {
	fmt.Printf("rendering a %d-frame fly-through as a single batch\n\n", frames)
	fmt.Printf("%-6s  %12s  %12s  %8s\n", "policy", "batch time", "mean frame", "reuse")
	for _, policy := range []string{"fifo", "sjf", "muf", "cf", "cnbf"} {
		total, mean, reuse := render(policy)
		fmt.Printf("%-6s  %11.1fs  %11.2fs  %6.0f%%\n", policy, total.Seconds(), mean.Seconds(), reuse*100)
	}
	fmt.Println("\nCNBF finishes the batch fastest: it orders frames by locality like CF,")
	fmt.Println("but avoids scheduling a frame while the neighbour it depends on is still")
	fmt.Println("rendering (which would stall a thread) — CF's eagerness costs it here.")
}

// render runs the whole movie under one ranking strategy and returns the
// batch makespan, mean per-frame execution time and mean reuse.
func render(policy string) (total time.Duration, meanExec time.Duration, reuse float64) {
	table := mqsched.NewSlideTable(mqsched.Slide{Name: "case-study", Width: slideSide, Height: slideSide})
	sys, err := mqsched.New(mqsched.Config{
		Mode:    mqsched.Simulated,
		Policy:  policy,
		Threads: 4,
	}, table)
	if err != nil {
		log.Fatal(err)
	}

	err = sys.RunWith(func(ctx mqsched.Ctx) {
		// Camera path: pan diagonally while alternating zoom levels, the way
		// a pathologist sweeps a slide.
		tickets := make([]*mqsched.Ticket, 0, frames)
		for f := 0; f < frames; f++ {
			zoom := []int64{8, 4, 4, 2}[f%4]
			side := frameOut * zoom
			// Diagonal pan with a slow sweep so consecutive frames overlap.
			span := slideSide - side
			x0 := span * int64(f) / frames
			y0 := span * int64(f) / frames
			x0 = x0 / zoom * zoom
			y0 = y0 / zoom * zoom
			q := mqsched.NewVMQuery("case-study", mqsched.R(x0, y0, x0+side, y0+side), zoom, mqsched.Subsample)
			tk, err := sys.Submit(q)
			if err != nil {
				log.Fatal(err)
			}
			tickets = append(tickets, tk)
		}
		var execSum time.Duration
		var reuseSum float64
		var last time.Duration
		for _, tk := range tickets {
			res := tk.Wait(ctx)
			execSum += res.ExecTime()
			reuseSum += res.ReusedFrac
			if res.Completed > last {
				last = res.Completed
			}
		}
		total = last
		meanExec = execSum / frames
		reuse = reuseSum / frames
	})
	if err != nil {
		log.Fatal(err)
	}
	return total, meanExec, reuse
}
