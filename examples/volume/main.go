// Volume: the paper's future-work application — scientific visualization of
// 3-dimensional datasets (§6) — running on the same middleware as the
// Virtual Microscope. Renders maximum-intensity projections (MIP) of slabs
// of a synthetic 3-D volume on the real runtime, demonstrates cross-query
// reuse of projection images, and writes the render to volume.png.
package main

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"log"
	"os"

	"mqsched"
	"mqsched/internal/dataset"
	"mqsched/internal/geom"
	"mqsched/internal/vol"
)

func main() {
	// A 1024x1024x32 voxel volume (32 MB), produced on demand.
	app := vol.New()
	dims := vol.Dims{Width: 1024, Height: 1024, Depth: 32}
	layout := app.Add("ct-study", dims)
	table := dataset.NewTable(layout)
	app.Finish(table)

	// The real runtime needs the volume's page generator instead of the
	// default VM slide generator.
	sys, err := newVolumeSystem(app, table)
	if err != nil {
		log.Fatal(err)
	}

	err = sys.RunWith(func(ctx mqsched.Ctx) {
		// Full-volume MIP at zoom 2.
		q1 := vol.NewMeta("ct-study", dims, geom.R(0, 0, 1024, 1024), 0, 32, 2, vol.MIP)
		t1, err := sys.Submit(q1)
		if err != nil {
			log.Fatal(err)
		}
		r1 := t1.Wait(ctx)
		fmt.Printf("MIP zoom 2 (cold): response=%v reused=%.0f%%\n", r1.ResponseTime().Round(0), r1.ReusedFrac*100)

		// The same slab at zoom 4: fully derivable from the cached zoom-2
		// projection (max of maxes), no voxel I/O at all.
		q2 := vol.NewMeta("ct-study", dims, geom.R(0, 0, 1024, 1024), 0, 32, 4, vol.MIP)
		t2, err := sys.Submit(q2)
		if err != nil {
			log.Fatal(err)
		}
		r2 := t2.Wait(ctx)
		fmt.Printf("MIP zoom 4 (warm): response=%v reused=%.0f%% rawBytes=%d\n",
			r2.ResponseTime().Round(0), r2.ReusedFrac*100, r2.InputBytesRead)

		if err := writeGrayPNG("volume.png", r1); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote volume.png")
	})
	if err != nil {
		log.Fatal(err)
	}
}

// newVolumeSystem assembles a Real-mode system whose disk farm generates
// volume pages. (The default facade generator produces VM slides.)
func newVolumeSystem(app *vol.App, table *dataset.Table) (*mqsched.System, error) {
	return mqsched.NewWithGenerator(mqsched.Config{
		Mode:      mqsched.Real,
		Policy:    "cnbf",
		Threads:   4,
		App:       app,
		TimeScale: 0.001,
	}, table, app.Generator())
}

// writeGrayPNG renders a 1-byte-per-pixel projection image.
func writeGrayPNG(path string, r *mqsched.Result) error {
	m := r.Meta.(vol.Meta)
	grid := m.OutRect()
	img := image.NewGray(image.Rect(0, 0, int(grid.Dx()), int(grid.Dy())))
	for i, v := range r.Blob.Data {
		img.SetGray(i%int(grid.Dx()), i/int(grid.Dx()), color.Gray{Y: v})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return png.Encode(f, img)
}
