// Policylab: compare all six ranking strategies of the paper on the same
// multi-client workload, across several thread-pool sizes — a miniature
// version of the paper's Figure 4 built purely on the public API. Runs on
// the deterministic simulated runtime, so the numbers are identical on every
// machine.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"mqsched"
)

const (
	clients     = 12
	queriesEach = 8
	slideSide   = int64(24576)
	outputSide  = int64(768)
)

var policies = []string{"fifo", "muf", "ff", "cf", "cnbf", "sjf"}

func main() {
	threadCounts := []int{1, 2, 4, 8, 16}
	fmt.Printf("mean query response time (s), %d clients x %d queries, subsampling\n\n", clients, queriesEach)
	fmt.Printf("%-6s", "policy")
	for _, t := range threadCounts {
		fmt.Printf("  %7s", fmt.Sprintf("T=%d", t))
	}
	fmt.Println()
	for _, p := range policies {
		fmt.Printf("%-6s", p)
		for _, t := range threadCounts {
			fmt.Printf("  %7.2f", run(p, t).Seconds())
		}
		fmt.Println()
	}
	fmt.Println("\nFIFO ignores reuse entirely; the graph-based strategies start from the")
	fmt.Println("same queue but order it by the reuse edges of the scheduling graph.")
}

// run executes the workload under one (policy, threads) setting and returns
// the mean response time.
func run(policy string, threads int) time.Duration {
	table := mqsched.NewSlideTable(mqsched.Slide{Name: "s", Width: slideSide, Height: slideSide})
	sys, err := mqsched.New(mqsched.Config{
		Mode:    mqsched.Simulated,
		Policy:  policy,
		Threads: threads,
	}, table)
	if err != nil {
		log.Fatal(err)
	}

	var sum time.Duration
	var n int
	for c := 0; c < clients; c++ {
		c := c
		sys.Start(fmt.Sprintf("client-%d", c), func(ctx mqsched.Ctx) {
			rng := rand.New(rand.NewSource(int64(c)*31 + 7))
			for q := 0; q < queriesEach; q++ {
				zoom := []int64{2, 4, 4, 8}[rng.Intn(4)]
				side := outputSide * zoom
				if side > slideSide {
					side = slideSide
				}
				span := slideSide - side
				// Two hotspots shared by all clients.
				hx := []int64{slideSide / 4, 3 * slideSide / 4}[rng.Intn(2)]
				x0 := clamp(hx-side/2+int64(rng.NormFloat64()*1200), 0, span) / zoom * zoom
				y0 := clamp(hx-side/2+int64(rng.NormFloat64()*1200), 0, span) / zoom * zoom
				qm := mqsched.NewVMQuery("s", mqsched.R(x0, y0, x0+side, y0+side), zoom, mqsched.Subsample)
				tk, err := sys.Submit(qm)
				if err != nil {
					log.Fatal(err)
				}
				res := tk.Wait(ctx)
				sum += res.ResponseTime()
				n++
			}
		})
	}
	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	return sum / time.Duration(n)
}

func clamp(v, lo, hi int64) int64 {
	if hi < lo {
		hi = lo
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
