// Scheduleviz: render the schedules two ranking strategies produce for the
// same workload as ASCII Gantt charts — waiting ('·'), executing ('█'), and
// blocked-on-a-producer ('x') phases per query. FIFO runs queries strictly
// in arrival order; CNBF reorders the queue so consumers run right after
// their producers' results are cached, which shows up as shorter rows and
// fewer 'x' phases.
package main

import (
	"fmt"
	"log"

	"mqsched"
)

const slideSide = int64(16384)

func main() {
	for _, policy := range []string{"fifo", "cnbf"} {
		fmt.Printf("--- %s ---\n", policy)
		fmt.Print(run(policy))
		fmt.Println()
	}
}

// run executes a small deliberately overlap-heavy batch and returns the
// rendered schedule.
func run(policy string) string {
	table := mqsched.NewSlideTable(mqsched.Slide{Name: "s", Width: slideSide, Height: slideSide})
	sys, err := mqsched.New(mqsched.Config{
		Mode:    mqsched.Simulated,
		Policy:  policy,
		Threads: 3,
		Trace:   true,
	}, table)
	if err != nil {
		log.Fatal(err)
	}

	err = sys.RunWith(func(ctx mqsched.Ctx) {
		// Three families of overlapping queries, interleaved in arrival
		// order so FIFO cannot exploit the overlap.
		var tickets []*mqsched.Ticket
		submit := func(x0, y0, side, zoom int64) {
			x0, y0 = x0/zoom*zoom, y0/zoom*zoom
			q := mqsched.NewVMQuery("s", mqsched.R(x0, y0, x0+side*zoom, y0+side*zoom), zoom, mqsched.Subsample)
			tk, err := sys.Submit(q)
			if err != nil {
				log.Fatal(err)
			}
			tickets = append(tickets, tk)
		}
		for round := int64(0); round < 4; round++ {
			submit(0, 0, 768, 8)                 // family A: big zoom-8 view
			submit(1024, 9000, 768, 4)           // family B
			submit(9000, 1000+round*256, 768, 2) // family C pans downward
		}
		for _, tk := range tickets {
			tk.Wait(ctx)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	st := sys.Stats()
	return sys.Trace().Gantt(100) +
		fmt.Sprintf("events: %s\nprojections=%d blocks=%d disk=%0.1fGB\n",
			sys.Trace().Summary(), st.Server.Projections, st.Server.Blocks,
			float64(st.Disk.BytesRead)/(1<<30))
}
