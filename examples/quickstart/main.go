// Quickstart: run the middleware on the real (wall-clock) runtime with
// actual pixel data. Submits a Virtual Microscope query, re-submits an
// overlapping one to demonstrate semantic caching, and writes the second
// output image to quickstart.png.
package main

import (
	"fmt"
	"image"
	"image/png"
	"log"
	"os"

	"mqsched"
)

func main() {
	// One synthetic 4096x4096 slide (≈50 MB at full resolution; pages are
	// produced on demand, nothing is stored on disk).
	table := mqsched.NewSlideTable(mqsched.Slide{Name: "slide1", Width: 4096, Height: 4096})

	sys, err := mqsched.New(mqsched.Config{
		Mode:      mqsched.Real,
		Policy:    "cf", // Closest First, the paper's locality-aware strategy
		Threads:   4,
		TimeScale: 0.002, // compress modelled disk time so the demo is snappy
	}, table)
	if err != nil {
		log.Fatal(err)
	}

	err = sys.RunWith(func(ctx mqsched.Ctx) {
		// A 512x512 output at magnification 1/4 over the slide's center.
		q1 := mqsched.NewVMQuery("slide1", mqsched.R(1024, 1024, 3072, 3072), 4, mqsched.Average)
		t1, err := sys.Submit(q1)
		if err != nil {
			log.Fatal(err)
		}
		r1 := t1.Wait(ctx)
		fmt.Printf("query 1 (cold): response=%v reused=%.0f%% rawBytes=%d\n",
			r1.ResponseTime().Round(0), r1.ReusedFrac*100, r1.InputBytesRead)

		// An overlapping query at the same magnification: most of it is
		// answered by projecting the cached result.
		q2 := mqsched.NewVMQuery("slide1", mqsched.R(1536, 1536, 3584, 3584), 4, mqsched.Average)
		t2, err := sys.Submit(q2)
		if err != nil {
			log.Fatal(err)
		}
		r2 := t2.Wait(ctx)
		fmt.Printf("query 2 (warm): response=%v reused=%.0f%% rawBytes=%d\n",
			r2.ResponseTime().Round(0), r2.ReusedFrac*100, r2.InputBytesRead)

		if err := writePNG("quickstart.png", r2); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote quickstart.png")
	})
	if err != nil {
		log.Fatal(err)
	}

	st := sys.Stats()
	fmt.Printf("server: %d queries, %d projections, %.1f MB read from the farm\n",
		st.Server.Completed, st.Server.Projections, float64(st.Disk.BytesRead)/(1<<20))
}

// writePNG renders a query result (row-major RGB over its output grid).
func writePNG(path string, r *mqsched.Result) error {
	q := r.Meta.(mqsched.VMQuery)
	grid := q.OutRect()
	img := image.NewRGBA(image.Rect(0, 0, int(grid.Dx()), int(grid.Dy())))
	i := 0
	for y := 0; y < int(grid.Dy()); y++ {
		for x := 0; x < int(grid.Dx()); x++ {
			o := img.PixOffset(x, y)
			img.Pix[o] = r.Blob.Data[i]
			img.Pix[o+1] = r.Blob.Data[i+1]
			img.Pix[o+2] = r.Blob.Data[i+2]
			img.Pix[o+3] = 0xff
			i += 3
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return png.Encode(f, img)
}
